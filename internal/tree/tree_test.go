package tree

import (
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

// fig2Rules builds the six-rule, two-dimensional classifier of Figure 2 in
// the paper, embedded into the SrcPort (x) / DstPort (y) dimensions with all
// other dimensions wildcarded. One x unit is 4096 port values so that equal
// cuts of the full port range land exactly on the rectangle boundaries.
func fig2Rules() []rule.Rule {
	mk := func(prio int, x0, x1, y0, y1 uint64) rule.Rule {
		r := rule.NewWildcardRule(prio)
		r.Ranges[rule.DimSrcPort] = rule.Range{Lo: x0 * 4096, Hi: x1*4096 - 1}
		r.Ranges[rule.DimDstPort] = rule.Range{Lo: y0 * 4096, Hi: y1*4096 - 1}
		return r
	}
	return []rule.Rule{
		mk(0, 4, 8, 10, 16),  // R0
		mk(1, 0, 16, 8, 12),  // R1: wide in x -> replicated by x cuts
		mk(2, 8, 12, 12, 16), // R2
		mk(3, 0, 4, 0, 4),    // R3
		mk(4, 0, 16, 4, 6),   // R4: wide in x
		mk(5, 12, 16, 0, 4),  // R5
	}
}

func ruleIDs(rules []rule.Rule) []int {
	ids := make([]int, len(rules))
	for i, r := range rules {
		ids[i] = r.Priority
	}
	return ids
}

func equalIDs(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperFigure2 reproduces the node-cutting example of Figure 2: cutting
// the root into four pieces along x replicates the wide rules R1 and R4 into
// every child, and a further two-way cut along y yields the leaf rule sets
// shown in the figure.
func TestPaperFigure2(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	if tr.Root.NumRules() != 6 {
		t.Fatalf("root has %d rules", tr.Root.NumRules())
	}

	xChildren, err := tr.Cut(tr.Root, rule.DimSrcPort, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(xChildren) != 4 {
		t.Fatalf("x cut produced %d children", len(xChildren))
	}
	wantX := [][]int{{1, 3, 4}, {0, 1, 4}, {1, 2, 4}, {1, 4, 5}}
	for i, c := range xChildren {
		got := ruleIDs(c.Rules)
		if !equalIDs(got, wantX[i]...) {
			t.Errorf("x child %d rules = %v, want %v", i, got, wantX[i])
		}
		if c.Depth != 1 {
			t.Errorf("x child %d depth = %d", i, c.Depth)
		}
	}

	// R1 and R4 are replicated into all four children, as the paper notes.
	for i, c := range xChildren {
		found1, found4 := false, false
		for _, r := range c.Rules {
			if r.Priority == 1 {
				found1 = true
			}
			if r.Priority == 4 {
				found4 = true
			}
		}
		if !found1 || !found4 {
			t.Errorf("wide rules not replicated into child %d", i)
		}
	}

	wantY := [][][]int{
		{{3, 4}, {1}},
		{{4}, {0, 1}},
		{{4}, {1, 2}},
		{{4, 5}, {1}},
	}
	for i, c := range xChildren {
		yChildren, err := tr.Cut(c, rule.DimDstPort, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(yChildren) != 2 {
			t.Fatalf("y cut produced %d children", len(yChildren))
		}
		for j, leaf := range yChildren {
			got := ruleIDs(leaf.Rules)
			if !equalIDs(got, wantY[i][j]...) {
				t.Errorf("leaf (%d,%d) rules = %v, want %v", i, j, got, wantY[i][j])
			}
		}
	}

	if !tr.IsComplete() {
		t.Error("tree should be complete with binth=2")
	}
	m := tr.ComputeMetrics()
	if m.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", m.MaxDepth)
	}
	if m.ClassificationTime != 3 {
		t.Errorf("classification time = %d, want 3 (root + 2 levels)", m.ClassificationTime)
	}
	// Classification through the tree agrees with linear search everywhere.
	checkEquivalence(t, tr, set, 2000, 99)
}

// TestPaperFigure3 reproduces the rule-partition example of Figure 3:
// separating the two x-wide rules (R1, R4) from the other four lets each
// partition be covered by a shallower tree with no replication.
func TestPaperFigure3(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)

	var wide, narrow []rule.Rule
	for _, r := range set.Rules() {
		if r.Coverage(rule.DimSrcPort) > 0.5 {
			wide = append(wide, r)
		} else {
			narrow = append(narrow, r)
		}
	}
	if len(wide) != 2 || len(narrow) != 4 {
		t.Fatalf("partition sizes %d/%d, want 2/4", len(wide), len(narrow))
	}

	children, err := tr.Partition(tr.Root, [][]rule.Rule{narrow, wide}, []string{"narrow", "wide"})
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 || tr.Root.Kind != KindPartition {
		t.Fatalf("partition produced %d children, kind %s", len(children), tr.Root.Kind)
	}

	// Partition 1 (narrow rules): one 4-way cut along x separates R0,R2,R3,R5
	// into singleton leaves, exactly as in Figure 3(a).
	cut1, err := tr.Cut(children[0], rule.DimSrcPort, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cut1 {
		if len(c.Rules) > 1 {
			t.Errorf("narrow partition leaf holds %d rules, want <= 1", len(c.Rules))
		}
	}
	// Partition 2 (wide rules): a 2-way cut along y separates R1 from R4.
	cut2, err := tr.Cut(children[1], rule.DimDstPort, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cut2 {
		if len(c.Rules) > 2 {
			t.Errorf("wide partition leaf holds %d rules", len(c.Rules))
		}
	}

	if !tr.IsComplete() {
		t.Error("partitioned tree should be complete")
	}
	m := tr.ComputeMetrics()
	// No rule replication at all in the partitioned tree.
	if m.RuleRefs != 6 {
		t.Errorf("partitioned tree stores %d rule refs, want 6 (no replication)", m.RuleRefs)
	}
	// Classification time under a partition is the sum over both subtrees.
	wantTime := 1 + (1 + 1) + (1 + 1)
	if m.ClassificationTime != wantTime {
		t.Errorf("classification time = %d, want %d", m.ClassificationTime, wantTime)
	}
	checkEquivalence(t, tr, set, 2000, 17)
}

func TestCutErrors(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	if _, err := tr.Cut(tr.Root, rule.DimSrcPort, 1); err == nil {
		t.Error("fan-out 1 should fail")
	}
	if _, err := tr.Cut(tr.Root, rule.DimSrcPort, MaxCutsPerDim+1); err == nil {
		t.Error("fan-out above MaxCutsPerDim should fail")
	}
	if _, err := tr.CutMulti(tr.Root, []rule.Dimension{rule.DimSrcIP, rule.DimSrcIP}, []int{2, 2}); err == nil {
		t.Error("duplicate dimension should fail")
	}
	if _, err := tr.CutMulti(tr.Root, []rule.Dimension{rule.DimSrcIP}, []int{2, 2}); err == nil {
		t.Error("mismatched dims/counts should fail")
	}
	if _, err := tr.CutMulti(tr.Root, nil, nil); err == nil {
		t.Error("empty cut should fail")
	}
	if _, err := tr.Cut(tr.Root, rule.DimSrcPort, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Cut(tr.Root, rule.DimSrcPort, 2); err == nil {
		t.Error("cutting an expanded node should fail")
	}
}

func TestPartitionErrors(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	rules := tr.Root.Rules
	if _, err := tr.Partition(tr.Root, [][]rule.Rule{rules}, nil); err == nil {
		t.Error("single-group partition should fail")
	}
	if _, err := tr.Partition(tr.Root, [][]rule.Rule{rules[:2], rules[:2]}, nil); err == nil {
		t.Error("partition losing rules should fail")
	}
	if _, err := tr.Partition(tr.Root, [][]rule.Rule{rules, nil}, nil); err == nil {
		t.Error("partition with an empty side should fail")
	}
	// Degenerate coverage partition (everything on one side).
	if _, err := tr.PartitionByCoverage(tr.Root, rule.DimProto, 2.0); err == nil {
		t.Error("degenerate coverage partition should fail")
	}
	if _, err := tr.Partition(tr.Root, [][]rule.Rule{rules[:3], rules[3:]}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Partition(tr.Root, [][]rule.Rule{rules[:3], rules[3:]}, nil); err == nil {
		t.Error("partitioning an expanded node should fail")
	}
}

func TestPartitionByCoverage(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	children, err := tr.PartitionByCoverage(tr.Root, rule.DimSrcPort, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d", len(children))
	}
	if children[0].NumRules()+children[1].NumRules() != 6 {
		t.Error("partition dropped rules")
	}
	if children[0].PartitionLabel == "" || children[1].PartitionLabel == "" {
		t.Error("partition labels missing")
	}
}

func TestSplitRange(t *testing.T) {
	pieces := splitRange(rule.Range{Lo: 0, Hi: 99}, 4)
	if len(pieces) != 4 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	if pieces[0] != (rule.Range{Lo: 0, Hi: 24}) || pieces[3] != (rule.Range{Lo: 75, Hi: 99}) {
		t.Errorf("pieces = %v", pieces)
	}
	// Pieces must tile the range exactly.
	covered := uint64(0)
	for i, p := range pieces {
		covered += p.Size()
		if i > 0 && p.Lo != pieces[i-1].Hi+1 {
			t.Errorf("gap between piece %d and %d", i-1, i)
		}
	}
	if covered != 100 {
		t.Errorf("pieces cover %d values, want 100", covered)
	}
	// Remainder goes to the last piece.
	pieces = splitRange(rule.Range{Lo: 0, Hi: 9}, 3)
	if pieces[2].Size() != 4 {
		t.Errorf("last piece = %v", pieces[2])
	}
	// Narrow range: fan-out shrinks to the number of values.
	pieces = splitRange(rule.Range{Lo: 5, Hi: 6}, 8)
	if len(pieces) != 2 {
		t.Errorf("narrow split = %v", pieces)
	}
	// Single value cannot be split.
	pieces = splitRange(rule.Range{Lo: 5, Hi: 5}, 4)
	if len(pieces) != 1 {
		t.Errorf("single-value split = %v", pieces)
	}
}

func TestNarrowBoxCutShrinksFanout(t *testing.T) {
	set := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0)})
	tr := New(set, 0)
	// Restrict the root box to a 2-value protocol range, then ask for 8 cuts.
	tr.Root.Box[rule.DimProto] = rule.Range{Lo: 6, Hi: 7}
	children, err := tr.Cut(tr.Root, rule.DimProto, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d, want fan-out clamped to 2", len(children))
	}
}

func TestRedundantRuleRemoval(t *testing.T) {
	// A high-priority rule that covers the whole child box makes every
	// lower-priority rule in that box redundant.
	broad := rule.NewWildcardRule(0)
	broad.Ranges[rule.DimSrcPort] = rule.Range{Lo: 0, Hi: 32767}
	narrow := rule.NewWildcardRule(1)
	narrow.Ranges[rule.DimSrcPort] = rule.Range{Lo: 100, Hi: 200}
	set := rule.NewSet([]rule.Rule{broad, narrow, rule.NewWildcardRule(2)})
	tr := New(set, 1)
	children, err := tr.Cut(tr.Root, rule.DimSrcPort, 2)
	if err != nil {
		t.Fatal(err)
	}
	// In the low half the broad rule shadows both the narrow rule and the
	// default rule.
	if got := ruleIDs(children[0].Rules); !equalIDs(got, 0) {
		t.Errorf("low child rules = %v, want [0]", got)
	}
	// Equivalence is preserved despite the removal.
	checkEquivalence(t, tr, set, 1000, 5)
}

func TestLevelSizesAndHistogram(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	children, _ := tr.Cut(tr.Root, rule.DimSrcPort, 4)
	for _, c := range children {
		if _, err := tr.Cut(c, rule.DimDstPort, 2); err != nil {
			t.Fatal(err)
		}
	}
	sizes := tr.LevelSizes()
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 4 || sizes[2] != 8 {
		t.Errorf("level sizes = %v", sizes)
	}
	hist := tr.CutDimensionHistogram()
	if hist[0][rule.DimSrcPort] != 1 {
		t.Errorf("level 0 histogram = %v", hist[0])
	}
	if hist[1][rule.DimDstPort] != 4 {
		t.Errorf("level 1 histogram = %v", hist[1])
	}
	if tr.NodeCount() != 13 || tr.LeafCount() != 8 {
		t.Errorf("nodes/leaves = %d/%d", tr.NodeCount(), tr.LeafCount())
	}
}

func TestBuilderDFSOrder(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	b := NewBuilder(set, 2)
	if b.Done() || b.Current() != b.Tree().Root {
		t.Fatal("builder should start at the root")
	}
	if err := b.ApplyCut(rule.DimSrcPort, 4); err != nil {
		t.Fatal(err)
	}
	// DFS: the next node must be the first x child (it holds 3 > binth
	// rules).
	if b.Current() != b.Tree().Root.Children[0] {
		t.Fatal("builder did not descend depth-first")
	}
	steps := 1
	for !b.Done() {
		if err := b.ApplyCut(rule.DimDstPort, 2); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if !b.Tree().IsComplete() {
		t.Error("builder finished with incomplete tree")
	}
	if b.Steps() != steps {
		t.Errorf("Steps = %d, want %d", b.Steps(), steps)
	}
	if b.Current() != nil {
		t.Error("Current should be nil when done")
	}
	if err := b.ApplyCut(rule.DimSrcIP, 2); err == nil {
		t.Error("applying to a finished builder should fail")
	}
}

func TestBuilderSkipAndPartition(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	b := NewBuilder(set, 2)
	if err := b.ApplyPartitionByCoverage(rule.DimSrcPort, 0.5); err != nil {
		t.Fatal(err)
	}
	if b.Pending() == 0 {
		t.Fatal("children should be pending")
	}
	// Skip everything: the tree stays incomplete but the builder terminates.
	for !b.Done() {
		b.Skip()
	}
	if b.Tree().IsComplete() {
		t.Error("skipped tree should be incomplete")
	}
	b.Skip() // no-op on a finished builder
	// Explicit group partition through the builder.
	b2 := NewBuilder(set, 2)
	rules := b2.Tree().Root.Rules
	if err := b2.ApplyPartition([][]rule.Rule{rules[:3], rules[3:]}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b2.ApplyCutMulti([]rule.Dimension{rule.DimSrcPort, rule.DimDstPort}, []int{2, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderTerminalRoot(t *testing.T) {
	set := rule.NewSet([]rule.Rule{rule.NewWildcardRule(0)})
	b := NewBuilder(set, 16)
	if !b.Done() {
		t.Error("builder over a tiny classifier should start done")
	}
	if err := b.ApplyPartition(nil, nil); err == nil {
		t.Error("partition on done builder should fail")
	}
	if err := b.ApplyCutMulti([]rule.Dimension{rule.DimSrcIP}, []int{2}); err == nil {
		t.Error("cut on done builder should fail")
	}
	if err := b.ApplyPartitionByCoverage(rule.DimSrcIP, 0.5); err == nil {
		t.Error("coverage partition on done builder should fail")
	}
}

func TestMultiDimCutAndLookup(t *testing.T) {
	fam, _ := classbench.FamilyByName("acl1")
	set := classbench.Generate(fam, 200, 3)
	tr := New(set, 8)
	if _, err := tr.CutMulti(tr.Root, []rule.Dimension{rule.DimSrcIP, rule.DimDstIP}, []int{4, 4}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(tr.Root.Children))
	}
	checkEquivalence(t, tr, set, 2000, 23)
}

func TestMetricsOnRootOnlyTree(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 16)
	m := tr.ComputeMetrics()
	if m.ClassificationTime != 1 || m.MaxDepth != 0 || m.Nodes != 1 || m.Leaves != 1 {
		t.Errorf("metrics = %+v", m)
	}
	wantBytes := NodeHeaderBytes + 6*RulePointerBytes
	if m.MemoryBytes != wantBytes {
		t.Errorf("memory = %d, want %d", m.MemoryBytes, wantBytes)
	}
	if m.BytesPerRule != float64(wantBytes)/6 {
		t.Errorf("bytes per rule = %v", m.BytesPerRule)
	}
	if tr.ReplicationFactor() != 1.0 {
		t.Errorf("replication = %v", tr.ReplicationFactor())
	}
	if tr.SubtreeDepth(tr.Root) != 0 {
		t.Error("subtree depth of leaf root should be 0")
	}
	if tr.Time(nil) != 0 || tr.Space(nil) != 0 || tr.SubtreeDepth(nil) != 0 {
		t.Error("nil node metrics should be zero")
	}
}

func TestRewardMatchesObjective(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	children, _ := tr.Cut(tr.Root, rule.DimSrcPort, 4)
	for _, c := range children {
		if _, err := tr.Cut(c, rule.DimDstPort, 2); err != nil {
			t.Fatal(err)
		}
	}
	timeOnly := tr.Reward(tr.Root, 1, nil)
	spaceOnly := tr.Reward(tr.Root, 0, nil)
	if timeOnly != -float64(tr.Time(tr.Root)) {
		t.Errorf("c=1 reward = %v", timeOnly)
	}
	if spaceOnly != -float64(tr.Space(tr.Root)) {
		t.Errorf("c=0 reward = %v", spaceOnly)
	}
	logScale := func(x float64) float64 {
		if x < 1 {
			x = 1
		}
		return x
	}
	if got := tr.Reward(tr.Root, 0.5, logScale); got >= 0 {
		t.Errorf("mixed reward should be negative, got %v", got)
	}
}

func TestMultiTreeMetricsAndClassify(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	var wide, narrow []rule.Rule
	for _, r := range set.Rules() {
		if r.Coverage(rule.DimSrcPort) > 0.5 {
			wide = append(wide, r)
		} else {
			narrow = append(narrow, r)
		}
	}
	t1 := NewFromRules(narrow, 2, 0)
	t2 := NewFromRules(wide, 2, 0)
	if _, err := t1.Cut(t1.Root, rule.DimSrcPort, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Cut(t2.Root, rule.DimDstPort, 2); err != nil {
		t.Fatal(err)
	}
	trees := []*Tree{t1, t2}
	m := MultiMetrics(trees)
	if m.ClassificationTime != t1.ComputeMetrics().ClassificationTime+t2.ComputeMetrics().ClassificationTime {
		t.Error("multi-tree time should be the sum")
	}
	if m.BytesPerRule <= 0 {
		t.Error("bytes per rule should be positive")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		p := randomPacket(rng)
		want, okWant := set.Match(p)
		got, okGot := ClassifyMulti(trees, p)
		if okWant != okGot {
			t.Fatalf("packet %v: found %v vs %v", p, okGot, okWant)
		}
		if okWant && got.Priority != want.Priority {
			t.Fatalf("packet %v: rule %d vs %d", p, got.Priority, want.Priority)
		}
	}
	if got := MultiMetrics(nil); got.MemoryBytes != 0 {
		t.Error("empty multi metrics should be zero")
	}
}

func TestNodeKindString(t *testing.T) {
	if KindLeaf.String() != "leaf" || KindCut.String() != "cut" || KindPartition.String() != "partition" {
		t.Error("kind strings wrong")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestNewFromRulesDefaults(t *testing.T) {
	tr := NewFromRules(fig2Rules(), 0, 0)
	if tr.Binth != DefaultBinth || tr.RuleCount != 6 {
		t.Errorf("defaults wrong: binth=%d count=%d", tr.Binth, tr.RuleCount)
	}
	tr2 := New(rule.NewSet(fig2Rules()), 0)
	if tr2.Binth != DefaultBinth {
		t.Errorf("New default binth = %d", tr2.Binth)
	}
}

func TestUnfinishedLeaves(t *testing.T) {
	fam, _ := classbench.FamilyByName("fw1")
	set := classbench.Generate(fam, 100, 1)
	tr := New(set, 8)
	if got := len(tr.UnfinishedLeaves()); got != 1 {
		t.Fatalf("unfinished leaves = %d", got)
	}
	if _, err := tr.Cut(tr.Root, rule.DimDstIP, 8); err != nil {
		t.Fatal(err)
	}
	unfinished := tr.UnfinishedLeaves()
	for _, n := range unfinished {
		if tr.IsTerminal(n) || !n.IsLeaf() {
			t.Error("unfinished leaf misreported")
		}
	}
}

// checkEquivalence verifies that tree classification matches linear search
// on n random packets plus packets drawn from inside each rule.
func checkEquivalence(t *testing.T, tr *Tree, set *rule.Set, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	check := func(p rule.Packet) {
		want, okWant := set.Match(p)
		got, okGot := tr.Classify(p)
		if okWant != okGot {
			t.Fatalf("packet %v: tree found=%v linear found=%v", p, okGot, okWant)
		}
		if okWant && got.Priority != want.Priority {
			t.Fatalf("packet %v: tree rule %d, linear rule %d", p, got.Priority, want.Priority)
		}
	}
	for i := 0; i < n; i++ {
		check(randomPacket(rng))
	}
	// Also probe inside every rule's box to hit low-probability regions.
	for _, r := range set.Rules() {
		p := rule.Packet{
			SrcIP:   uint32(r.Ranges[rule.DimSrcIP].Lo),
			DstIP:   uint32(r.Ranges[rule.DimDstIP].Hi),
			SrcPort: uint16(r.Ranges[rule.DimSrcPort].Lo),
			DstPort: uint16(r.Ranges[rule.DimDstPort].Hi),
			Proto:   uint8(r.Ranges[rule.DimProto].Lo),
		}
		check(p)
	}
}

func randomPacket(rng *rand.Rand) rule.Packet {
	return rule.Packet{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   uint8(rng.Intn(256)),
	}
}

// TestPropertyRandomTreesEquivalent builds trees with random action
// sequences over generated classifiers and checks that classification always
// agrees with linear search — the core correctness invariant the paper
// relies on ("decision trees provide perfect accuracy by construction").
func TestPropertyRandomTreesEquivalent(t *testing.T) {
	families := []string{"acl1", "fw3", "ipc2"}
	for _, famName := range families {
		fam, _ := classbench.FamilyByName(famName)
		for seed := int64(0); seed < 3; seed++ {
			set := classbench.Generate(fam, 150, seed)
			rng := rand.New(rand.NewSource(seed * 31))
			b := NewBuilder(set, 8)
			steps := 0
			thresholds := []float64{0.02, 0.08, 0.32, 0.64}
			for !b.Done() && steps < 500 {
				steps++
				// Random action: mostly cuts, occasionally a partition.
				if rng.Float64() < 0.15 {
					dim := rule.Dimensions()[rng.Intn(rule.NumDims)]
					thr := thresholds[rng.Intn(len(thresholds))]
					if err := b.ApplyPartitionByCoverage(dim, thr); err == nil {
						continue
					}
				}
				dim := rule.Dimensions()[rng.Intn(rule.NumDims)]
				k := CutSizes[rng.Intn(len(CutSizes))]
				if err := b.ApplyCut(dim, k); err != nil {
					t.Fatalf("%s seed %d: cut failed: %v", famName, seed, err)
				}
			}
			// Whatever state the tree is in (complete or truncated), lookups
			// must agree with linear search.
			checkEquivalence(t, b.Tree(), set, 500, seed+1000)
		}
	}
}
