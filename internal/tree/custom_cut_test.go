package tree

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

func TestCutAtPoints(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	// Unequal boundaries along x at 1/4 and 3/4 of the port space.
	children, err := tr.CutAtPoints(tr.Root, rule.DimSrcPort, []uint64{16384, 49152})
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 3 {
		t.Fatalf("children = %d, want 3", len(children))
	}
	if !tr.Root.CustomCut {
		t.Error("CustomCut flag not set")
	}
	// Pieces must tile the full port range.
	if children[0].Box[rule.DimSrcPort] != (rule.Range{Lo: 0, Hi: 16383}) ||
		children[1].Box[rule.DimSrcPort] != (rule.Range{Lo: 16384, Hi: 49151}) ||
		children[2].Box[rule.DimSrcPort] != (rule.Range{Lo: 49152, Hi: 65535}) {
		t.Errorf("child boxes = %v %v %v",
			children[0].Box[rule.DimSrcPort], children[1].Box[rule.DimSrcPort], children[2].Box[rule.DimSrcPort])
	}
	checkEquivalence(t, tr, set, 1500, 31)
}

func TestCutAtPointsErrors(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	if _, err := tr.CutAtPoints(tr.Root, rule.DimSrcPort, nil); err == nil {
		t.Error("no boundaries should fail")
	}
	if _, err := tr.CutAtPoints(tr.Root, rule.DimSrcPort, []uint64{0}); err == nil {
		t.Error("boundary at range start should fail")
	}
	if _, err := tr.CutAtPoints(tr.Root, rule.DimSrcPort, []uint64{70000}); err == nil {
		t.Error("boundary beyond range should fail")
	}
	if _, err := tr.CutAtPoints(tr.Root, rule.DimSrcPort, []uint64{100, 100}); err == nil {
		t.Error("non-increasing boundaries should fail")
	}
	if _, err := tr.CutAtPoints(tr.Root, rule.DimSrcPort, []uint64{100, 50}); err == nil {
		t.Error("decreasing boundaries should fail")
	}
	if _, err := tr.Cut(tr.Root, rule.DimSrcPort, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CutAtPoints(tr.Root, rule.DimSrcPort, []uint64{100}); err == nil {
		t.Error("cutting an expanded node should fail")
	}
}

func TestBuilderApplyCutAtPoints(t *testing.T) {
	fam, _ := classbench.FamilyByName("ipc1")
	set := classbench.Generate(fam, 120, 2)
	b := NewBuilder(set, 8)
	if err := b.ApplyCutAtPoints(rule.DimDstIP, []uint64{1 << 30, 1 << 31, 3 << 30}); err != nil {
		t.Fatal(err)
	}
	for !b.Done() && b.Steps() < 200 {
		if err := b.ApplyCut(rule.DimSrcIP, 8); err != nil {
			// If the box is too narrow to cut further, accept the leaf.
			b.Skip()
		}
	}
	checkEquivalence(t, b.Tree(), set, 800, 77)
	// Calling on a finished builder fails.
	for !b.Done() {
		b.Skip()
	}
	if err := b.ApplyCutAtPoints(rule.DimSrcIP, []uint64{1}); err == nil {
		t.Error("finished builder should reject the cut")
	}
}

func TestCustomCutMixedWithEqualCuts(t *testing.T) {
	fam, _ := classbench.FamilyByName("fw4")
	set := classbench.Generate(fam, 200, 6)
	tr := New(set, 8)
	children, err := tr.CutAtPoints(tr.Root, rule.DimSrcIP, []uint64{1 << 31})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range children {
		if tr.IsTerminal(c) {
			continue
		}
		if _, err := tr.Cut(c, rule.DimDstIP, 16); err != nil {
			t.Fatal(err)
		}
	}
	checkEquivalence(t, tr, set, 1500, 13)
}
