package tree

import "neurocuts/internal/rule"

// Memory cost model, shared by every algorithm so that bytes-per-rule is
// comparable across trees. The constants follow the accounting used by the
// HiCuts/EffiCuts line of work: an internal node stores a small fixed header
// (region boundaries, cut description) plus one pointer per child; a leaf
// stores a header plus one rule pointer per rule it holds (so rule
// replication is what drives the metric up).
const (
	// NodeHeaderBytes is charged once per tree node.
	NodeHeaderBytes = 16
	// ChildPointerBytes is charged per child of an internal node.
	ChildPointerBytes = 4
	// RulePointerBytes is charged per rule reference stored in a leaf.
	RulePointerBytes = 8
)

// Metrics summarises a (complete or partial) decision tree.
type Metrics struct {
	// ClassificationTime is the worst-case number of node visits for a
	// lookup, computed with the paper's Equations 1 and 3: max over children
	// of a cut node, sum over children of a partition node.
	ClassificationTime int
	// MemoryBytes is the total size of the tree under the cost model above
	// (Equations 2 and 4: sum over children for both node kinds).
	MemoryBytes int
	// BytesPerRule is MemoryBytes divided by the classifier size.
	BytesPerRule float64
	// Nodes and Leaves count the tree's nodes.
	Nodes  int
	Leaves int
	// MaxDepth is the deepest node's depth.
	MaxDepth int
	// MaxLeafRules is the largest number of rules held by any leaf.
	MaxLeafRules int
	// RuleRefs is the total number of rule references stored in leaves
	// (RuleRefs / classifier size is the replication factor).
	RuleRefs int
}

// ComputeMetrics walks the tree once and returns its Metrics.
func (t *Tree) ComputeMetrics() Metrics {
	var m Metrics
	m.ClassificationTime = t.Time(t.Root)
	m.MemoryBytes = t.Space(t.Root)
	if t.RuleCount > 0 {
		m.BytesPerRule = float64(m.MemoryBytes) / float64(t.RuleCount)
	}
	t.Walk(func(n *Node) bool {
		m.Nodes++
		if n.Depth > m.MaxDepth {
			m.MaxDepth = n.Depth
		}
		if n.IsLeaf() {
			m.Leaves++
			m.RuleRefs += len(n.Rules)
			if len(n.Rules) > m.MaxLeafRules {
				m.MaxLeafRules = len(n.Rules)
			}
		}
		return true
	})
	return m
}

// Time returns the worst-case classification time (node visits) of the
// subtree rooted at n, following Equation 1 (cut: t_n plus the max over
// children) and Equation 3 (partition: t_n plus the sum over children).
// Leaves cost one visit.
func (t *Tree) Time(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	switch n.Kind {
	case KindCut:
		max := 0
		for _, c := range n.Children {
			if v := t.Time(c); v > max {
				max = v
			}
		}
		return 1 + max
	default: // KindPartition
		sum := 0
		for _, c := range n.Children {
			sum += t.Time(c)
		}
		return 1 + sum
	}
}

// Space returns the memory footprint in bytes of the subtree rooted at n,
// following Equations 2 and 4 (sum over children for both action kinds) and
// the cost model constants above.
func (t *Tree) Space(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return NodeHeaderBytes + RulePointerBytes*len(n.Rules)
	}
	total := NodeHeaderBytes + ChildPointerBytes*len(n.Children)
	for _, c := range n.Children {
		total += t.Space(c)
	}
	return total
}

// SubtreeDepth returns the height of the subtree rooted at n counted in
// edges (a leaf has height 0).
func (t *Tree) SubtreeDepth(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if v := t.SubtreeDepth(c); v > max {
			max = v
		}
	}
	return 1 + max
}

// Reward evaluates the NeuroCuts objective for the subtree rooted at n
// (Equation 5): -(c*f(Time) + (1-c)*f(Space)), where f is either the
// identity or log, chosen by the caller via scale.
func (t *Tree) Reward(n *Node, c float64, scale func(float64) float64) float64 {
	time := float64(t.Time(n))
	space := float64(t.Space(n))
	if scale != nil {
		time = scale(time)
		space = scale(space)
	}
	return -(c*time + (1-c)*space)
}

// ReplicationFactor returns the average number of leaves each original rule
// appears in (1.0 means no replication at all).
func (t *Tree) ReplicationFactor() float64 {
	if t.RuleCount == 0 {
		return 0
	}
	refs := 0
	t.Walk(func(n *Node) bool {
		if n.IsLeaf() {
			refs += len(n.Rules)
		}
		return true
	})
	return float64(refs) / float64(t.RuleCount)
}

// MultiMetrics combines the metrics of several trees that jointly implement
// one classifier (the EffiCuts / rule-partition setting where a packet is
// looked up in every tree): classification time adds up, memory adds up, and
// bytes-per-rule uses the total rule count.
func MultiMetrics(trees []*Tree) Metrics {
	var m Metrics
	ruleCount := 0
	for _, t := range trees {
		tm := t.ComputeMetrics()
		m.ClassificationTime += tm.ClassificationTime
		m.MemoryBytes += tm.MemoryBytes
		m.Nodes += tm.Nodes
		m.Leaves += tm.Leaves
		m.RuleRefs += tm.RuleRefs
		if tm.MaxDepth > m.MaxDepth {
			m.MaxDepth = tm.MaxDepth
		}
		if tm.MaxLeafRules > m.MaxLeafRules {
			m.MaxLeafRules = tm.MaxLeafRules
		}
		ruleCount += t.RuleCount
	}
	if ruleCount > 0 {
		m.BytesPerRule = float64(m.MemoryBytes) / float64(ruleCount)
	}
	return m
}

// ClassifyMulti looks a packet up in every tree and returns the best
// (lowest-priority-value) match across them, as required when the classifier
// was split into per-partition trees.
func ClassifyMulti(trees []*Tree, p rule.Packet) (rule.Rule, bool) {
	var best rule.Rule
	found := false
	for _, t := range trees {
		if r, ok := t.Classify(p); ok {
			if !found || r.Priority < best.Priority {
				best = r
				found = true
			}
		}
	}
	return best, found
}
