// Package tree implements the decision-tree data structure shared by every
// packet classification algorithm in this repository: the hand-tuned
// baselines (HiCuts, HyperCuts, EffiCuts, CutSplit) and NeuroCuts itself.
//
// A tree partitions the 5-dimensional header space. Internal nodes either
// cut their box along one or more dimensions into equal-sized sub-boxes
// (each child owns one sub-box and the rules intersecting it) or partition
// their rule list into disjoint subsets (each child owns the same box but a
// subset of the rules). Leaves hold at most `binth` rules, which are
// searched linearly. Using one engine for all algorithms mirrors the paper's
// methodology and guarantees that depth and memory metrics are computed
// identically for learned and hand-crafted trees.
package tree

import (
	"fmt"

	"neurocuts/internal/rule"
)

// NodeKind distinguishes how an internal node was expanded.
type NodeKind int

// Node kinds.
const (
	// KindLeaf is a terminal node holding at most binth rules.
	KindLeaf NodeKind = iota
	// KindCut is an internal node produced by an equal-sized cut along one
	// or more dimensions.
	KindCut
	// KindPartition is an internal node whose children split the node's
	// rules into disjoint subsets over the same box.
	KindPartition
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindCut:
		return "cut"
	case KindPartition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is a decision-tree node.
type Node struct {
	// Box is the region of header space the node is responsible for.
	Box [rule.NumDims]rule.Range
	// Rules are the rules intersecting Box, in priority order.
	Rules []rule.Rule
	// Kind says whether the node is a leaf or how it was expanded.
	Kind NodeKind
	// Children are the node's children (empty for leaves).
	Children []*Node
	// Depth is the node's distance from the root (root = 0).
	Depth int

	// CutDims and CutCounts describe a KindCut expansion: the dimensions cut
	// and the number of equal-sized pieces per dimension. len(CutDims) == 1
	// for single-dimension algorithms; HyperCuts may cut several at once.
	CutDims   []rule.Dimension
	CutCounts []int
	// CustomCut marks a cut whose pieces are not equal-sized (produced by
	// CutAtPoints); lookups then locate the child by scanning child boxes
	// instead of index arithmetic.
	CustomCut bool

	// PartitionLabel optionally names the partition a child represents (used
	// by EffiCuts-style category partitioning and for inspection).
	PartitionLabel string
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// NumRules returns the number of rules stored at the node.
func (n *Node) NumRules() int { return len(n.Rules) }

// Tree is a decision tree over a classifier.
type Tree struct {
	// Root is the tree's root node; its box is the full header space.
	Root *Node
	// Binth is the leaf threshold: nodes with at most Binth rules are
	// terminal.
	Binth int
	// RuleCount is the number of rules in the original classifier, used as
	// the denominator for bytes-per-rule.
	RuleCount int
}

// DefaultBinth is the leaf threshold used throughout the paper's evaluation
// (both NeuroCuts and the baselines stop splitting nodes with at most this
// many rules).
const DefaultBinth = 16

// New creates a tree whose root covers the full header space and holds every
// rule of the classifier. binth <= 0 selects DefaultBinth.
func New(s *rule.Set, binth int) *Tree {
	if binth <= 0 {
		binth = DefaultBinth
	}
	root := &Node{Kind: KindLeaf}
	for _, d := range rule.Dimensions() {
		root.Box[d] = rule.FullRange(d)
	}
	root.Rules = append(root.Rules, s.Rules()...)
	return &Tree{Root: root, Binth: binth, RuleCount: s.Len()}
}

// NewFromRules is like New but takes a plain rule slice (already in priority
// order). ruleCount sets the bytes-per-rule denominator; when zero it
// defaults to len(rules).
func NewFromRules(rules []rule.Rule, binth, ruleCount int) *Tree {
	if binth <= 0 {
		binth = DefaultBinth
	}
	if ruleCount <= 0 {
		ruleCount = len(rules)
	}
	root := &Node{Kind: KindLeaf}
	for _, d := range rule.Dimensions() {
		root.Box[d] = rule.FullRange(d)
	}
	root.Rules = append(root.Rules, rules...)
	return &Tree{Root: root, Binth: binth, RuleCount: ruleCount}
}

// IsTerminal reports whether the node needs no further expansion under the
// tree's leaf threshold.
func (t *Tree) IsTerminal(n *Node) bool {
	return n.NumRules() <= t.Binth
}

// Walk visits every node in depth-first pre-order, calling fn. Walking stops
// early if fn returns false.
func (t *Tree) Walk(fn func(*Node) bool) {
	var rec func(n *Node) bool
	rec = func(n *Node) bool {
		if !fn(n) {
			return false
		}
		for _, c := range n.Children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// NodeCount returns the total number of nodes in the tree.
func (t *Tree) NodeCount() int {
	count := 0
	t.Walk(func(*Node) bool { count++; return true })
	return count
}

// LeafCount returns the number of leaves in the tree.
func (t *Tree) LeafCount() int {
	count := 0
	t.Walk(func(n *Node) bool {
		if n.IsLeaf() {
			count++
		}
		return true
	})
	return count
}

// UnfinishedLeaves returns, in DFS order, the leaves that still hold more
// rules than the leaf threshold and therefore need further expansion.
func (t *Tree) UnfinishedLeaves() []*Node {
	var out []*Node
	t.Walk(func(n *Node) bool {
		if n.IsLeaf() && !t.IsTerminal(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// IsComplete reports whether every leaf satisfies the leaf threshold.
func (t *Tree) IsComplete() bool {
	complete := true
	t.Walk(func(n *Node) bool {
		if n.IsLeaf() && !t.IsTerminal(n) {
			complete = false
			return false
		}
		return true
	})
	return complete
}

// MaxDepth returns the maximum node depth in the tree (root = 0, so a
// root-only tree has depth 0).
func (t *Tree) MaxDepth() int {
	max := 0
	t.Walk(func(n *Node) bool {
		if n.Depth > max {
			max = n.Depth
		}
		return true
	})
	return max
}

// LevelSizes returns the number of nodes at each depth level, index = depth.
// This is the data plotted in Figure 5 of the paper.
func (t *Tree) LevelSizes() []int {
	var out []int
	t.Walk(func(n *Node) bool {
		for len(out) <= n.Depth {
			out = append(out, 0)
		}
		out[n.Depth]++
		return true
	})
	return out
}

// CutDimensionHistogram returns, per depth level, how many cut nodes cut
// each dimension (the coloured distribution in Figure 5).
func (t *Tree) CutDimensionHistogram() []map[rule.Dimension]int {
	var out []map[rule.Dimension]int
	t.Walk(func(n *Node) bool {
		if n.Kind != KindCut {
			return true
		}
		for len(out) <= n.Depth {
			out = append(out, map[rule.Dimension]int{})
		}
		for _, d := range n.CutDims {
			out[n.Depth][d]++
		}
		return true
	})
	return out
}
