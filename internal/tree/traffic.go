package tree

import "neurocuts/internal/rule"

// This file implements traffic-aware lookup-cost accounting: instead of the
// worst-case classification time of Equation 1, the cost of a (sub)tree is
// measured as the average number of node visits over a given packet trace.
// The paper's conclusion proposes exactly this extension ("by considering a
// specific traffic pattern, NeuroCuts can be extended to other objectives
// such as average classification time"); internal/env exposes it through
// Config.TrafficTrace.

// TrafficStats holds, for every node reached by at least one packet of a
// trace, how many packets reached it and how many node visits those packets
// spent inside the node's subtree.
type TrafficStats struct {
	// Count[n] is the number of trace packets whose lookup visits n.
	Count map[*Node]int
	// Visits[n] is the total number of node visits those packets spend in
	// the subtree rooted at n (including n itself).
	Visits map[*Node]int
	// Packets is the trace length.
	Packets int
}

// ComputeTrafficStats classifies every packet of the trace once and
// accumulates per-node visit statistics.
func (t *Tree) ComputeTrafficStats(packets []rule.Packet) *TrafficStats {
	s := &TrafficStats{
		Count:   make(map[*Node]int),
		Visits:  make(map[*Node]int),
		Packets: len(packets),
	}
	for _, p := range packets {
		t.accumulateVisits(t.Root, p, s)
	}
	return s
}

// accumulateVisits returns the number of node visits a lookup of p spends in
// the subtree rooted at n, recording per-node statistics along the way.
func (t *Tree) accumulateVisits(n *Node, p rule.Packet, s *TrafficStats) int {
	visits := 1
	switch {
	case n.IsLeaf():
		// Leaf cost is one visit (the rule scan is bounded by binth).
	case n.Kind == KindCut:
		if child := n.childForPacket(p); child != nil {
			visits += t.accumulateVisits(child, p, s)
		}
	default: // KindPartition: every child is consulted.
		for _, c := range n.Children {
			visits += t.accumulateVisits(c, p, s)
		}
	}
	s.Count[n]++
	s.Visits[n] += visits
	return visits
}

// AverageTime returns the mean number of visits spent in n's subtree by the
// packets that reached n, and whether any packet reached it at all.
func (s *TrafficStats) AverageTime(n *Node) (float64, bool) {
	c := s.Count[n]
	if c == 0 {
		return 0, false
	}
	return float64(s.Visits[n]) / float64(c), true
}

// AverageLookupTime returns the mean number of node visits per lookup over
// the trace (the traffic-aware analogue of Metrics.ClassificationTime).
func (t *Tree) AverageLookupTime(packets []rule.Packet) float64 {
	if len(packets) == 0 {
		return 0
	}
	total := 0
	for _, p := range packets {
		_, visits, _ := t.ClassifyWithDepth(p)
		total += visits
	}
	return float64(total) / float64(len(packets))
}
