package tree

import (
	"math"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/rule"
)

func TestTrafficStatsOnFigure2Tree(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	children, _ := tr.Cut(tr.Root, rule.DimSrcPort, 4)
	for _, c := range children {
		if _, err := tr.Cut(c, rule.DimDstPort, 2); err != nil {
			t.Fatal(err)
		}
	}

	// Two packets, both in the first x quarter, different y halves.
	p1 := rule.Packet{SrcPort: 100, DstPort: 100}
	p2 := rule.Packet{SrcPort: 100, DstPort: 60000}
	stats := tr.ComputeTrafficStats([]rule.Packet{p1, p2})
	if stats.Packets != 2 {
		t.Fatalf("packets = %d", stats.Packets)
	}
	// The root is reached by both packets; its subtree costs 3 visits each.
	avg, ok := stats.AverageTime(tr.Root)
	if !ok || avg != 3 {
		t.Errorf("root average time = %v, %v", avg, ok)
	}
	// The first x child is reached by both; the other x children by none.
	if avg, ok := stats.AverageTime(children[0]); !ok || avg != 2 {
		t.Errorf("child 0 average time = %v, %v", avg, ok)
	}
	if _, ok := stats.AverageTime(children[2]); ok {
		t.Error("child 2 should not be reached")
	}
	// AverageLookupTime agrees with the per-root statistic.
	if got := tr.AverageLookupTime([]rule.Packet{p1, p2}); got != 3 {
		t.Errorf("average lookup time = %v", got)
	}
	if got := tr.AverageLookupTime(nil); got != 0 {
		t.Errorf("empty trace average = %v", got)
	}
}

func TestTrafficStatsWithPartition(t *testing.T) {
	set := rule.NewSet(fig2Rules())
	tr := New(set, 2)
	var wide, narrow []rule.Rule
	for _, r := range set.Rules() {
		if r.Coverage(rule.DimSrcPort) > 0.5 {
			wide = append(wide, r)
		} else {
			narrow = append(narrow, r)
		}
	}
	parts, err := tr.Partition(tr.Root, [][]rule.Rule{narrow, wide}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Cut(parts[0], rule.DimSrcPort, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Cut(parts[1], rule.DimDstPort, 2); err != nil {
		t.Fatal(err)
	}
	p := rule.Packet{SrcPort: 100, DstPort: 100}
	stats := tr.ComputeTrafficStats([]rule.Packet{p})
	// Partition lookups visit both children: root(1) + [part0(1)+leaf(1)] +
	// [part1(1)+leaf(1)] = 5.
	if avg, ok := stats.AverageTime(tr.Root); !ok || avg != 5 {
		t.Errorf("root average = %v, %v", avg, ok)
	}
	// Both partition children are reached by the single packet.
	if c := stats.Count[parts[0]]; c != 1 {
		t.Errorf("partition child 0 count = %d", c)
	}
	if c := stats.Count[parts[1]]; c != 1 {
		t.Errorf("partition child 1 count = %d", c)
	}
}

func TestAverageNeverExceedsWorstCase(t *testing.T) {
	fam, _ := classbench.FamilyByName("acl1")
	set := classbench.Generate(fam, 200, 4)
	b := NewBuilder(set, 8)
	for !b.Done() && b.Steps() < 300 {
		if err := b.ApplyCut(rule.Dimensions()[b.Steps()%rule.NumDims], 8); err != nil {
			b.Skip()
		}
	}
	tr := b.Tree()
	trace := classbench.GenerateTrace(set, 2000, 5)
	packets := make([]rule.Packet, len(trace))
	for i, e := range trace {
		packets[i] = e.Key
	}
	avg := tr.AverageLookupTime(packets)
	worst := tr.ComputeMetrics().ClassificationTime
	if avg <= 0 || avg > float64(worst)+1e-9 {
		t.Errorf("average %v must be positive and at most the worst case %d", avg, worst)
	}
	// Per-node averages computed through TrafficStats agree with the direct
	// root measurement.
	stats := tr.ComputeTrafficStats(packets)
	rootAvg, ok := stats.AverageTime(tr.Root)
	if !ok || math.Abs(rootAvg-avg) > 1e-9 {
		t.Errorf("root average %v != direct average %v", rootAvg, avg)
	}
}
