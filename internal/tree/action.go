package tree

import (
	"fmt"

	"neurocuts/internal/rule"
)

// MaxCutsPerDim caps the number of equal-sized pieces a single cut action
// may create in one dimension. It is a sanity bound on the engine; the
// NeuroCuts agent further restricts itself to the CutSizes fan-outs while
// hand-tuned heuristics such as HiCuts may use larger fan-outs.
const MaxCutsPerDim = 256

// CutSizes is the set of cut fan-outs available to the NeuroCuts agent
// ({2, 4, 8, 16, 32}, Section 4.1 of the paper).
var CutSizes = []int{2, 4, 8, 16, 32}

// Cut splits node n along a single dimension into k equal-sized pieces and
// attaches the resulting children. Rules are replicated into every child
// whose sub-box they intersect. It returns the created children.
//
// Cutting an already-expanded node or using a fan-out below 2 is a
// programming error and returns an error without modifying the node.
func (t *Tree) Cut(n *Node, dim rule.Dimension, k int) ([]*Node, error) {
	return t.CutMulti(n, []rule.Dimension{dim}, []int{k})
}

// CutMulti splits node n along several dimensions at once (the HyperCuts
// generalisation): dims[i] is cut into counts[i] equal pieces and the
// children form the cross product of the per-dimension pieces.
func (t *Tree) CutMulti(n *Node, dims []rule.Dimension, counts []int) ([]*Node, error) {
	if !n.IsLeaf() {
		return nil, fmt.Errorf("tree: node already expanded (%s)", n.Kind)
	}
	if len(dims) == 0 || len(dims) != len(counts) {
		return nil, fmt.Errorf("tree: mismatched cut dims/counts (%d vs %d)", len(dims), len(counts))
	}
	seen := map[rule.Dimension]bool{}
	total := 1
	for i, d := range dims {
		if seen[d] {
			return nil, fmt.Errorf("tree: dimension %s cut twice in one action", d)
		}
		seen[d] = true
		if counts[i] < 2 {
			return nil, fmt.Errorf("tree: cut count %d in %s must be >= 2", counts[i], d)
		}
		if counts[i] > MaxCutsPerDim {
			return nil, fmt.Errorf("tree: cut count %d in %s exceeds max %d", counts[i], d, MaxCutsPerDim)
		}
		total *= counts[i]
	}

	// Pre-compute the sub-ranges per dimension.
	pieces := make([][]rule.Range, len(dims))
	for i, d := range dims {
		pieces[i] = splitRange(n.Box[d], counts[i])
		// A box can be narrower than the requested fan-out; splitRange then
		// returns fewer pieces and the effective fan-out shrinks.
		counts[i] = len(pieces[i])
	}
	total = 1
	for _, c := range counts {
		total *= c
	}

	children := make([]*Node, 0, total)
	idx := make([]int, len(dims))
	for {
		child := &Node{Kind: KindLeaf, Box: n.Box, Depth: n.Depth + 1}
		for i, d := range dims {
			child.Box[d] = pieces[i][idx[i]]
		}
		child.Rules = assignRules(n.Rules, child.Box)
		children = append(children, child)

		// Advance the mixed-radix counter over idx.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < counts[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}

	n.Kind = KindCut
	n.CutDims = append([]rule.Dimension(nil), dims...)
	n.CutCounts = append([]int(nil), counts...)
	n.Children = children
	return children, nil
}

// CutAtPoints splits node n along a single dimension at explicit boundaries:
// points must be strictly increasing values inside the node's range for dim,
// and each point p starts a new child at p (so k points produce k+1
// children). This is the "equi-dense" cut used by EffiCuts and the
// HyperSplit-style splits used by CutSplit, where cut boundaries follow the
// rule distribution rather than being equal-sized.
func (t *Tree) CutAtPoints(n *Node, dim rule.Dimension, points []uint64) ([]*Node, error) {
	if !n.IsLeaf() {
		return nil, fmt.Errorf("tree: node already expanded (%s)", n.Kind)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("tree: CutAtPoints needs at least one boundary")
	}
	box := n.Box[dim]
	prev := box.Lo
	pieces := make([]rule.Range, 0, len(points)+1)
	for i, p := range points {
		if p <= prev || p > box.Hi {
			return nil, fmt.Errorf("tree: boundary %d (%d) outside (%d, %d]", i, p, prev, box.Hi)
		}
		pieces = append(pieces, rule.Range{Lo: prev, Hi: p - 1})
		prev = p
	}
	pieces = append(pieces, rule.Range{Lo: prev, Hi: box.Hi})

	children := make([]*Node, 0, len(pieces))
	for _, piece := range pieces {
		child := &Node{Kind: KindLeaf, Box: n.Box, Depth: n.Depth + 1}
		child.Box[dim] = piece
		child.Rules = assignRules(n.Rules, child.Box)
		children = append(children, child)
	}
	n.Kind = KindCut
	n.CutDims = []rule.Dimension{dim}
	n.CutCounts = []int{len(children)}
	n.CustomCut = true
	n.Children = children
	return children, nil
}

// Partition splits node n's rules into the given disjoint groups and creates
// one child per non-empty group, each covering the same box as n. Labels
// (optional, may be nil) annotate the children. It returns the created
// children.
func (t *Tree) Partition(n *Node, groups [][]rule.Rule, labels []string) ([]*Node, error) {
	if !n.IsLeaf() {
		return nil, fmt.Errorf("tree: node already expanded (%s)", n.Kind)
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("tree: partition needs at least 2 groups, got %d", len(groups))
	}
	totalRules := 0
	for _, g := range groups {
		totalRules += len(g)
	}
	if totalRules != len(n.Rules) {
		return nil, fmt.Errorf("tree: partition groups hold %d rules, node holds %d", totalRules, len(n.Rules))
	}
	children := make([]*Node, 0, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		child := &Node{
			Kind:  KindLeaf,
			Box:   n.Box,
			Depth: n.Depth + 1,
			Rules: append([]rule.Rule(nil), g...),
		}
		if labels != nil && i < len(labels) {
			child.PartitionLabel = labels[i]
		}
		children = append(children, child)
	}
	if len(children) < 2 {
		return nil, fmt.Errorf("tree: partition produced %d non-empty groups, need >= 2", len(children))
	}
	n.Kind = KindPartition
	n.Children = children
	return children, nil
}

// PartitionByCoverage splits node n's rules into two groups by whether their
// coverage of dimension dim exceeds threshold (the "simple" partition action
// of the NeuroCuts action space). It fails if either side would be empty,
// because such a partition makes no progress.
func (t *Tree) PartitionByCoverage(n *Node, dim rule.Dimension, threshold float64) ([]*Node, error) {
	var small, large []rule.Rule
	for _, r := range n.Rules {
		if r.Coverage(dim) > threshold {
			large = append(large, r)
		} else {
			small = append(small, r)
		}
	}
	if len(small) == 0 || len(large) == 0 {
		return nil, fmt.Errorf("tree: coverage partition on %s at %.2f is degenerate (%d/%d)",
			dim, threshold, len(small), len(large))
	}
	return t.Partition(n, [][]rule.Rule{small, large},
		[]string{fmt.Sprintf("%s<=%.2f", dim, threshold), fmt.Sprintf("%s>%.2f", dim, threshold)})
}

// splitRange divides r into k equal-sized sub-ranges (the last sub-range
// absorbs the remainder). If the range has fewer than k values it returns
// one sub-range per value.
func splitRange(r rule.Range, k int) []rule.Range {
	size := r.Size()
	if uint64(k) > size {
		k = int(size)
	}
	if k <= 1 {
		return []rule.Range{r}
	}
	out := make([]rule.Range, 0, k)
	step := size / uint64(k)
	lo := r.Lo
	for i := 0; i < k; i++ {
		hi := lo + step - 1
		if i == k-1 {
			hi = r.Hi
		}
		out = append(out, rule.Range{Lo: lo, Hi: hi})
		lo = hi + 1
	}
	return out
}

// redundancyLimit bounds the quadratic rule-overlap optimisation: nodes
// holding more rules than this skip redundancy elimination (keeping the
// redundant rules is always correct, just slightly larger), so that cutting
// the top of a 100k-rule tree stays near-linear.
const redundancyLimit = 4096

// assignRules returns the rules that intersect the box, preserving priority
// order, with rules made redundant inside the box removed: a rule is
// redundant when a strictly higher-priority rule's intersection with the box
// fully covers its own intersection (the standard HiCuts rule-overlap
// optimisation, applied uniformly to all algorithms).
func assignRules(rules []rule.Rule, box [rule.NumDims]rule.Range) []rule.Rule {
	prune := len(rules) <= redundancyLimit
	var out []rule.Rule
	for _, r := range rules {
		if !r.OverlapsBox(box) {
			continue
		}
		if prune {
			clipped := clipToBox(r, box)
			redundant := false
			for _, kept := range out {
				if clipToBox(kept, box).Covers(clipped) {
					redundant = true
					break
				}
			}
			if redundant {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// clipToBox returns a copy of r with every dimension clipped to the box.
// Callers guarantee that r overlaps the box.
func clipToBox(r rule.Rule, box [rule.NumDims]rule.Range) rule.Rule {
	clipped := r
	for _, d := range rule.Dimensions() {
		if ir, ok := r.Ranges[d].Intersect(box[d]); ok {
			clipped.Ranges[d] = ir
		}
	}
	return clipped
}
