// Package hypercuts implements HyperCuts (Singh, Baboescu, Varghese & Wang,
// SIGCOMM 2003), the second baseline in the paper's evaluation.
//
// HyperCuts generalises HiCuts by cutting a node along several dimensions at
// once, which separates rules that differ in different fields without paying
// one tree level per field. The dimension set is chosen as every dimension
// whose distinct-range count is at least the mean across cuttable
// dimensions; the per-dimension fan-outs are grown under a shared space
// budget. HyperCuts also shrinks each node's box to the bounding box of its
// rules ("region compaction") before cutting, which avoids wasting cuts on
// empty space.
package hypercuts

import (
	"fmt"
	"math"

	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Config holds the HyperCuts tuning knobs.
type Config struct {
	// Binth is the leaf threshold.
	Binth int
	// SpFac is the space-measure factor bounding the total fan-out of a
	// node: the number of children may not exceed SpFac * sqrt(rules).
	SpFac float64
	// MaxCutsPerDim caps the per-dimension fan-out.
	MaxCutsPerDim int
	// MaxDepth aborts pathological constructions; 0 means no limit.
	MaxDepth int
	// RegionCompaction enables shrinking node boxes to their rules' bounding
	// box before cutting (on by default in DefaultConfig).
	RegionCompaction bool
}

// DefaultConfig returns the standard HyperCuts configuration.
func DefaultConfig() Config {
	return Config{
		Binth:            tree.DefaultBinth,
		SpFac:            4.0,
		MaxCutsPerDim:    16,
		MaxDepth:         256,
		RegionCompaction: true,
	}
}

// Build constructs a HyperCuts decision tree for the classifier.
func Build(s *rule.Set, cfg Config) (*tree.Tree, error) {
	if cfg.Binth <= 0 {
		cfg.Binth = tree.DefaultBinth
	}
	if cfg.SpFac <= 0 {
		cfg.SpFac = 4.0
	}
	if cfg.MaxCutsPerDim < 2 {
		cfg.MaxCutsPerDim = 16
	}
	t := tree.New(s, cfg.Binth)
	if err := buildNode(t, t.Root, cfg); err != nil {
		return nil, err
	}
	return t, nil
}

func buildNode(t *tree.Tree, n *tree.Node, cfg Config) error {
	if t.IsTerminal(n) {
		return nil
	}
	if cfg.MaxDepth > 0 && n.Depth >= cfg.MaxDepth {
		return nil
	}
	if cfg.RegionCompaction {
		compactRegion(n)
	}
	candidates := chooseDimensions(n)
	if len(candidates) == 0 {
		return nil
	}
	dims, counts := chooseCounts(n, candidates, cfg)
	if len(dims) == 0 {
		return nil
	}
	children, err := t.CutMulti(n, dims, counts)
	if err != nil {
		return fmt.Errorf("hypercuts: cutting node at depth %d: %w", n.Depth, err)
	}
	progress := false
	for _, c := range children {
		if c.NumRules() < n.NumRules() {
			progress = true
			break
		}
	}
	for _, c := range children {
		if !progress && c.NumRules() == n.NumRules() {
			continue
		}
		if err := buildNode(t, c, cfg); err != nil {
			return err
		}
	}
	return nil
}

// compactRegion shrinks the node's box in every dimension to the smallest
// range covering its rules' projections (clipped to the current box). The
// box still covers every rule in the node, so classification is unaffected
// for packets routed to this node; packets falling in the trimmed dead space
// match no rule here, exactly as before.
func compactRegion(n *tree.Node) {
	if len(n.Rules) == 0 {
		return
	}
	for _, d := range rule.Dimensions() {
		lo := n.Box[d].Hi
		hi := n.Box[d].Lo
		for _, r := range n.Rules {
			rr, ok := r.Ranges[d].Intersect(n.Box[d])
			if !ok {
				continue
			}
			if rr.Lo < lo {
				lo = rr.Lo
			}
			if rr.Hi > hi {
				hi = rr.Hi
			}
		}
		if lo <= hi {
			n.Box[d] = rule.Range{Lo: lo, Hi: hi}
		}
	}
}

// chooseDimensions selects every cuttable dimension whose distinct-range
// count is at least the mean across cuttable dimensions, capped at three
// dimensions (larger products explode the fan-out without helping).
func chooseDimensions(n *tree.Node) []rule.Dimension {
	type dimCount struct {
		d rule.Dimension
		c int
	}
	var candidates []dimCount
	sum := 0
	for _, d := range rule.Dimensions() {
		if n.Box[d].Size() < 2 {
			continue
		}
		c := rule.DistinctRangeCount(n.Rules, d)
		if c < 2 {
			continue
		}
		candidates = append(candidates, dimCount{d, c})
		sum += c
	}
	if len(candidates) == 0 {
		return nil
	}
	mean := float64(sum) / float64(len(candidates))
	var out []rule.Dimension
	for _, dc := range candidates {
		if float64(dc.c) >= mean {
			out = append(out, dc.d)
		}
	}
	if len(out) == 0 {
		out = append(out, candidates[0].d)
	}
	if len(out) > 3 {
		// Keep the three highest-count dimensions.
		best := out
		// Simple selection by repeatedly taking the max.
		selected := make([]rule.Dimension, 0, 3)
		used := map[rule.Dimension]bool{}
		for len(selected) < 3 {
			bestDim := best[0]
			bestC := -1
			for _, dc := range candidates {
				if used[dc.d] {
					continue
				}
				inOut := false
				for _, d := range best {
					if d == dc.d {
						inOut = true
						break
					}
				}
				if inOut && dc.c > bestC {
					bestDim, bestC = dc.d, dc.c
				}
			}
			used[bestDim] = true
			selected = append(selected, bestDim)
		}
		out = selected
	}
	return out
}

// chooseCounts distributes a total fan-out budget of spfac*sqrt(rules)
// across the chosen dimensions, doubling the per-dimension fan-out
// round-robin while the budget allows. It returns the dimensions that ended
// up with a fan-out of at least 2 and their counts.
func chooseCounts(n *tree.Node, dims []rule.Dimension, cfg Config) ([]rule.Dimension, []int) {
	budget := cfg.SpFac * math.Sqrt(float64(n.NumRules()))
	if budget < 4 {
		budget = 4
	}
	counts := make([]int, len(dims))
	for i := range counts {
		counts[i] = 1
	}
	total := 1
	for {
		grew := false
		for i, d := range dims {
			if counts[i]*2 > cfg.MaxCutsPerDim {
				continue
			}
			if uint64(counts[i]*2) > n.Box[d].Size() {
				continue
			}
			if float64(total/counts[i]*(counts[i]*2)) > budget {
				continue
			}
			total = total / counts[i] * (counts[i] * 2)
			counts[i] *= 2
			grew = true
		}
		if !grew {
			break
		}
	}
	var outDims []rule.Dimension
	var outCounts []int
	for i := range counts {
		if counts[i] >= 2 {
			outDims = append(outDims, dims[i])
			outCounts = append(outCounts, counts[i])
		}
	}
	if len(outDims) == 0 {
		// Budget too tight for any doubling: fall back to a binary cut on the
		// first candidate dimension, which chooseDimensions guarantees can be
		// subdivided.
		return []rule.Dimension{dims[0]}, []int{2}
	}
	return outDims, outCounts
}
