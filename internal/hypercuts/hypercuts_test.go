package hypercuts

import (
	"math/rand"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

func checkTreeEquivalence(t *testing.T, tr *tree.Tree, set *rule.Set, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := rule.Packet{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8(rng.Intn(256)),
		}
		want, okWant := set.Match(p)
		got, okGot := tr.Classify(p)
		if okWant != okGot || (okWant && want.Priority != got.Priority) {
			t.Fatalf("packet %v: tree (%v,%v) vs linear (%v,%v)", p, got.Priority, okGot, want.Priority, okWant)
		}
	}
	for _, e := range classbench.GenerateTrace(set, n/2, seed+1) {
		got, ok := tr.Classify(e.Key)
		if !ok || got.Priority != e.MatchRule {
			t.Fatalf("trace packet %v: got %v/%v want %d", e.Key, got.Priority, ok, e.MatchRule)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Binth != tree.DefaultBinth || !cfg.RegionCompaction || cfg.SpFac <= 0 {
		t.Errorf("unexpected defaults %+v", cfg)
	}
}

func TestBuildSmallClassifiers(t *testing.T) {
	for _, fam := range []string{"acl1", "fw2", "ipc2"} {
		f, _ := classbench.FamilyByName(fam)
		set := classbench.Generate(f, 300, 1)
		tr, err := Build(set, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if tr.NodeCount() < 2 {
			t.Errorf("%s: tree did not grow", fam)
		}
		checkTreeEquivalence(t, tr, set, 1500, 7)
	}
}

func TestMultiDimensionalCutsHappen(t *testing.T) {
	f, _ := classbench.FamilyByName("acl1")
	set := classbench.Generate(f, 500, 2)
	tr, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	tr.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.KindCut && len(n.CutDims) > 1 {
			multi++
		}
		if n.Kind == tree.KindPartition {
			t.Error("HyperCuts must not partition")
			return false
		}
		return true
	})
	if multi == 0 {
		t.Error("expected at least one multi-dimensional cut (that is HyperCuts' defining feature)")
	}
}

func TestHyperCutsShallowerThanHiCutsOnACL(t *testing.T) {
	// The headline claim of the HyperCuts paper: multi-dimensional cutting
	// yields shallower trees than HiCuts on ACL-style classifiers.
	f, _ := classbench.FamilyByName("acl2")
	set := classbench.Generate(f, 600, 3)
	hyper, err := Build(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hm, hc := hyper.ComputeMetrics(), hi.ComputeMetrics()
	if hm.ClassificationTime > hc.ClassificationTime+2 {
		t.Errorf("HyperCuts time %d should not be notably worse than HiCuts %d",
			hm.ClassificationTime, hc.ClassificationTime)
	}
}

func TestRegionCompaction(t *testing.T) {
	// All rules live in a small corner of the space; with compaction the
	// root box shrinks before cutting.
	rules := make([]rule.Rule, 0, 40)
	for i := 0; i < 39; i++ {
		r := rule.NewWildcardRule(i)
		r.Ranges[rule.DimSrcIP] = rule.PrefixRange(uint64(0x0A000000+i*256), 24, 32)
		r.Ranges[rule.DimDstIP] = rule.PrefixRange(uint64(0x0B000000+i*512), 23, 32)
		rules = append(rules, r)
	}
	set := rule.NewSet(rules) // deliberately no default rule
	cfg := DefaultConfig()
	cfg.Binth = 4
	tr, err := Build(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Box[rule.DimSrcIP].IsFull(rule.DimSrcIP) {
		t.Error("region compaction should have shrunk the root box")
	}
	checkTreeEquivalence(t, tr, set, 1000, 9)

	cfg.RegionCompaction = false
	tr2, err := Build(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.Root.Box[rule.DimSrcIP].IsFull(rule.DimSrcIP) {
		t.Error("without compaction the root box must stay full")
	}
	checkTreeEquivalence(t, tr2, set, 1000, 10)
}

func TestZeroConfigDefaults(t *testing.T) {
	f, _ := classbench.FamilyByName("fw3")
	set := classbench.Generate(f, 150, 5)
	tr, err := Build(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkTreeEquivalence(t, tr, set, 600, 6)
}

func TestUnseparableRulesTerminate(t *testing.T) {
	rules := make([]rule.Rule, 30)
	for i := range rules {
		rules[i] = rule.NewWildcardRule(i)
	}
	set := rule.NewSet(rules)
	tr, err := Build(set, Config{Binth: 8, SpFac: 4, MaxCutsPerDim: 8, MaxDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	checkTreeEquivalence(t, tr, set, 200, 8)
}

func TestDepthLimit(t *testing.T) {
	f, _ := classbench.FamilyByName("fw1")
	set := classbench.Generate(f, 400, 7)
	cfg := DefaultConfig()
	cfg.MaxDepth = 5
	cfg.Binth = 2
	tr, err := Build(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDepth() > 5 {
		t.Errorf("depth %d exceeds limit", tr.MaxDepth())
	}
	checkTreeEquivalence(t, tr, set, 800, 14)
}
