package linkcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}

// markdownFiles finds every .md file in the repository, skipping VCS and
// generated/vendored trees.
func markdownFiles(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			files = append(files, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("found no markdown files — the walker is broken")
	}
	return files
}

// TestMarkdownLinks is the repository's docs gate: every relative link in
// every committed Markdown file resolves, and every #anchor names a real
// heading. Runs in the plain test suite and as an explicit CI step.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	files := markdownFiles(t, root)
	problems, err := CheckFiles(root, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p.String())
	}
	t.Logf("checked %d markdown files", len(files))
}

// TestSlugify pins the anchor algorithm against GitHub's observed output.
func TestSlugify(t *testing.T) {
	cases := []struct{ heading, want string }{
		{"Architecture", "architecture"},
		{"The run-to-completion dataplane", "the-run-to-completion-dataplane"},
		{"Snapshot / overlay / journal lifecycle", "snapshot--overlay--journal-lifecycle"},
		{"Serving (`classifyd`)", "serving-classifyd"},
		{"Wire protocol v2", "wire-protocol-v2"},
		{"Artifacts & warm start", "artifacts--warm-start"},
		{"Path 1: the worker-pool engine (default)", "path-1-the-worker-pool-engine-default"},
	}
	for _, c := range cases {
		if got := slugify(c.heading); got != c.want {
			t.Errorf("slugify(%q) = %q, want %q", c.heading, got, c.want)
		}
	}
}

// TestCheckFilesCatchesBreakage proves the checker actually fails on the
// breakage classes it exists for — a test of the test.
func TestCheckFilesCatchesBreakage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.md", strings.Join([]string{
		"# Alpha",
		"",
		"[ok](b.md) [ok2](b.md#beta) [self](#alpha)",
		"[gone](missing.md) [badfrag](b.md#nope) [badself](#omega)",
		"",
		"```",
		"[inside a fence](never-checked.md)",
		"```",
	}, "\n"))
	write("b.md", "# Beta\n")
	problems, err := CheckFiles(dir, []string{"a.md", "b.md"})
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]bool{}
	for _, p := range problems {
		bad[p.Link] = true
	}
	for _, want := range []string{"missing.md", "b.md#nope", "#omega"} {
		if !bad[want] {
			t.Errorf("checker missed broken link %q (got %v)", want, problems)
		}
	}
	if len(problems) != 3 {
		t.Errorf("want exactly 3 problems, got %d: %v", len(problems), problems)
	}
}
