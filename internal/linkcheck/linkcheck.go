// Package linkcheck validates the repository's Markdown cross-references:
// every relative link must point at a file that exists, and every fragment
// (#anchor) must name a heading that GitHub's renderer would actually
// produce in the target document.
//
// Docs rot exactly one way: a file moves or a heading is reworded and the
// links that pointed at it keep looking plausible. External URLs can only
// be checked with network access, so they are out of scope; everything the
// repository can verify hermetically, it does — in a plain test
// (internal/linkcheck) that runs in `go test ./...` and as an explicit CI
// step.
package linkcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links [text](target). Images
// ![alt](target) match too (the bang is outside the capture); reference
// links and autolinks are rare enough here not to need handling.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRE matches ATX headings; the capture is the heading text.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.*?)\s*#*\s*$`)

// codeFenceRE strips fenced code blocks so example links inside ``` fences
// (shell snippets, protocol transcripts) are not treated as references.
var codeFenceRE = regexp.MustCompile("(?ms)^```.*?^```[ \t]*$")

// inlineCodeRE strips `inline code` spans for the same reason.
var inlineCodeRE = regexp.MustCompile("`[^`\n]*`")

// Problem is one broken reference.
type Problem struct {
	File   string // markdown file containing the link
	Link   string // the link target as written
	Reason string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s: link %q: %s", p.File, p.Link, p.Reason)
}

// slugify reproduces GitHub's heading-anchor algorithm closely enough for
// this repository: lowercase, spaces and dashes become dashes, everything
// that is not a letter, digit, dash or underscore is dropped.
func slugify(heading string) string {
	heading = inlineCodeRE.ReplaceAllStringFunc(heading, func(s string) string {
		return strings.Trim(s, "`")
	})
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ' || r == '-':
			b.WriteByte('-')
		case r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r > 127: // non-ASCII letters survive slugification
			b.WriteRune(r)
		}
	}
	return b.String()
}

// anchors returns the set of heading anchors a rendered document exposes.
func anchors(markdown string) map[string]bool {
	out := map[string]bool{}
	for _, m := range headingRE.FindAllStringSubmatch(codeFenceRE.ReplaceAllString(markdown, ""), -1) {
		slug := slugify(m[1])
		// GitHub de-duplicates repeated headings as slug, slug-1, slug-2...
		if out[slug] {
			for i := 1; ; i++ {
				dedup := fmt.Sprintf("%s-%d", slug, i)
				if !out[dedup] {
					out[dedup] = true
					break
				}
			}
		} else {
			out[slug] = true
		}
	}
	return out
}

// external reports whether the target leaves the repository (or the
// filesystem entirely) and so cannot be checked hermetically.
func external(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "//")
}

// CheckFiles validates every relative link in the given Markdown files
// (paths relative to root) and returns one Problem per broken reference.
func CheckFiles(root string, files []string) ([]Problem, error) {
	var problems []Problem
	for _, rel := range files {
		raw, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return nil, err
		}
		doc := string(raw)
		stripped := codeFenceRE.ReplaceAllString(doc, "")
		for _, m := range linkRE.FindAllStringSubmatch(stripped, -1) {
			target := m[1]
			if external(target) {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			// Pure fragment: an anchor within this document.
			targetFile := rel
			if path != "" {
				if strings.HasPrefix(path, "/") {
					problems = append(problems, Problem{rel, target, "absolute path; use a repo-relative link"})
					continue
				}
				targetFile = filepath.Join(filepath.Dir(rel), path)
				if _, err := os.Stat(filepath.Join(root, targetFile)); err != nil {
					problems = append(problems, Problem{rel, target, "target does not exist"})
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(strings.ToLower(targetFile), ".md") {
				continue // anchors into non-markdown files are not ours to judge
			}
			tRaw := raw
			if targetFile != rel {
				if tRaw, err = os.ReadFile(filepath.Join(root, targetFile)); err != nil {
					return nil, err
				}
			}
			if !anchors(string(tRaw))[frag] {
				problems = append(problems, Problem{rel, target, fmt.Sprintf("no heading with anchor #%s in %s", frag, targetFile)})
			}
		}
	}
	return problems, nil
}
