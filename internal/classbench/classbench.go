// Package classbench generates synthetic packet classifiers and header
// traces with the structural characteristics of the ClassBench benchmark
// suite (Taylor & Turner, INFOCOM 2005), which the NeuroCuts paper uses for
// its entire evaluation.
//
// The original ClassBench ships twelve seed parameter files derived from
// real classifiers: five access-control lists (acl1-acl5), five firewalls
// (fw1-fw5) and two IP-chain filter sets (ipc1, ipc2). The db_generator tool
// scales a seed up to a requested number of rules while preserving the
// seed's structural statistics: the joint prefix-length distribution of the
// source/destination address pair, the port-range class mix (wildcard,
// ephemeral-high, well-known-low, arbitrary range, exact match), the
// protocol distribution and the overall wildcard density.
//
// This package reproduces that behaviour from family-level parameter tables
// rather than the original seed files (which are not redistributable): each
// Family below encodes the published qualitative signature of its namesake —
// ACL sets have long, specific prefixes and exact destination ports; FW sets
// have many wildcard/short source prefixes and arbitrary port ranges (the
// classifiers that cause heavy rule replication in cutting algorithms); IPC
// sets sit in between. Generation is fully deterministic given (family,
// size, seed).
package classbench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"neurocuts/internal/rule"
)

// Kind is the coarse family category.
type Kind int

// The three ClassBench family categories.
const (
	KindACL Kind = iota
	KindFW
	KindIPC
)

// String returns "acl", "fw" or "ipc".
func (k Kind) String() string {
	switch k {
	case KindACL:
		return "acl"
	case KindFW:
		return "fw"
	case KindIPC:
		return "ipc"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// PortClass is one of the five ClassBench port-range classes.
type PortClass int

// Port range classes, following the ClassBench taxonomy.
const (
	PortWildcard  PortClass = iota // 0 : 65535
	PortHigh                       // 1024 : 65535 (ephemeral)
	PortLow                        // 0 : 1023 (well-known)
	PortArbitrary                  // arbitrary [lo, hi] range
	PortExact                      // a single port
)

// Family describes the structural statistics of one ClassBench seed.
type Family struct {
	// Name is the canonical seed name, e.g. "acl1" or "fw5".
	Name string
	// Kind is the coarse category.
	Kind Kind

	// SrcPrefixLens and DstPrefixLens are categorical distributions over
	// prefix lengths (index = prefix length 0..32, value = relative weight).
	SrcPrefixLens [33]float64
	DstPrefixLens [33]float64

	// SrcPortClasses and DstPortClasses are relative weights over the five
	// port classes, indexed by PortClass.
	SrcPortClasses [5]float64
	DstPortClasses [5]float64

	// ProtoWeights maps protocol numbers to relative weights. Protocol 0
	// stands for "wildcard".
	ProtoWeights map[uint8]float64

	// AddressLocality controls how clustered the generated prefixes are: the
	// generator draws addresses from a small pool of network "centres" with
	// this probability, and uniformly otherwise. Real classifiers are highly
	// clustered, which is what gives cutting algorithms traction.
	AddressLocality float64

	// Centres is the number of distinct network centres per dimension.
	Centres int
}

// Families returns the twelve seed families used throughout the paper's
// evaluation (acl1-5, fw1-5, ipc1-2) in the order they appear in Figures 8
// and 9.
func Families() []Family {
	out := make([]Family, 0, 12)
	for i := 1; i <= 5; i++ {
		out = append(out, makeACL(i))
	}
	for i := 1; i <= 5; i++ {
		out = append(out, makeFW(i))
	}
	for i := 1; i <= 2; i++ {
		out = append(out, makeIPC(i))
	}
	return out
}

// FamilyByName looks up a family by its seed name ("acl3", "fw1", ...).
func FamilyByName(name string) (Family, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("classbench: unknown family %q", name)
}

// makeACL builds the acl<i> family. ACL seeds are dominated by long, specific
// prefixes on both addresses, exact or well-known destination ports, and
// explicit protocols; wildcards are rare.
func makeACL(i int) Family {
	f := Family{
		Name:            fmt.Sprintf("acl%d", i),
		Kind:            KindACL,
		AddressLocality: 0.85,
		Centres:         24 + 8*i,
	}
	for l := 16; l <= 32; l++ {
		f.SrcPrefixLens[l] = 1 + float64(l-15)
		f.DstPrefixLens[l] = 1 + float64(l-15)
	}
	// A sprinkle of wildcards / very short prefixes, increasing slightly with
	// the seed index to differentiate acl1..acl5.
	f.SrcPrefixLens[0] = 2 + float64(i)
	f.DstPrefixLens[0] = 1 + float64(i)*0.5
	f.SrcPrefixLens[8] = 1
	f.DstPrefixLens[8] = 1

	f.SrcPortClasses = [5]float64{70, 10, 5, 5, 10}
	f.DstPortClasses = [5]float64{15, 10, 15, 10 + 5*float64(i), 50}
	f.ProtoWeights = map[uint8]float64{6: 60, 17: 25, 1: 5, 0: 10}
	return f
}

// makeFW builds the fw<i> family. Firewall seeds have many wildcard or very
// short source prefixes, moderately specific destinations, arbitrary port
// ranges, and a higher overall wildcard density — the classic worst case for
// rule replication under equal-sized cutting.
func makeFW(i int) Family {
	f := Family{
		Name:            fmt.Sprintf("fw%d", i),
		Kind:            KindFW,
		AddressLocality: 0.7,
		Centres:         12 + 4*i,
	}
	f.SrcPrefixLens[0] = 30 + float64(i)*4
	f.SrcPrefixLens[8] = 10
	f.SrcPrefixLens[16] = 10
	f.SrcPrefixLens[24] = 15
	f.SrcPrefixLens[32] = 20

	f.DstPrefixLens[0] = 10 + float64(i)*2
	f.DstPrefixLens[16] = 15
	f.DstPrefixLens[24] = 30
	f.DstPrefixLens[32] = 30

	f.SrcPortClasses = [5]float64{45, 20, 10, 20, 5}
	f.DstPortClasses = [5]float64{25, 15, 15, 25, 20}
	f.ProtoWeights = map[uint8]float64{6: 45, 17: 30, 1: 8, 47: 4, 50: 3, 0: 10}
	return f
}

// makeIPC builds the ipc<i> family, which mixes ACL-like specific rules with
// FW-like wildcard-heavy rules.
func makeIPC(i int) Family {
	f := Family{
		Name:            fmt.Sprintf("ipc%d", i),
		Kind:            KindIPC,
		AddressLocality: 0.8,
		Centres:         20 + 10*i,
	}
	f.SrcPrefixLens[0] = 12 + 6*float64(i)
	f.DstPrefixLens[0] = 8 + 4*float64(i)
	for l := 16; l <= 32; l += 4 {
		f.SrcPrefixLens[l] = 10
		f.DstPrefixLens[l] = 12
	}
	f.SrcPrefixLens[32] = 25
	f.DstPrefixLens[32] = 25

	f.SrcPortClasses = [5]float64{55, 12, 8, 10, 15}
	f.DstPortClasses = [5]float64{20, 12, 12, 16, 40}
	f.ProtoWeights = map[uint8]float64{6: 50, 17: 30, 1: 8, 0: 12}
	return f
}

// Generate builds a classifier of the requested size from the family's
// structural statistics. The final rule is always the catch-all default, so
// every packet matches something. Generation is deterministic for a given
// (family, size, seed).
func Generate(f Family, size int, seed int64) *rule.Set {
	if size < 1 {
		size = 1
	}
	rng := rand.New(rand.NewSource(seed ^ int64(hashName(f.Name))))
	g := newGenerator(f, rng)

	rules := make([]rule.Rule, 0, size)
	seen := make(map[[rule.NumDims]rule.Range]struct{}, size)
	attempts := 0
	for len(rules) < size-1 && attempts < size*20 {
		attempts++
		r := g.rule()
		if _, dup := seen[r.Ranges]; dup {
			continue
		}
		seen[r.Ranges] = struct{}{}
		rules = append(rules, r)
	}
	rules = append(rules, rule.NewWildcardRule(len(rules)))
	return rule.NewSet(rules)
}

// generator holds the sampling state for one classifier.
type generator struct {
	f          Family
	rng        *rand.Rand
	srcCentres []uint32
	dstCentres []uint32
	srcCDF     []float64
	dstCDF     []float64
	protoList  []uint8
	protoCDF   []float64
}

func newGenerator(f Family, rng *rand.Rand) *generator {
	g := &generator{f: f, rng: rng}
	g.srcCentres = make([]uint32, f.Centres)
	g.dstCentres = make([]uint32, f.Centres)
	for i := range g.srcCentres {
		g.srcCentres[i] = rng.Uint32()
		g.dstCentres[i] = rng.Uint32()
	}
	g.srcCDF = cumulative(f.SrcPrefixLens[:])
	g.dstCDF = cumulative(f.DstPrefixLens[:])

	g.protoList = make([]uint8, 0, len(f.ProtoWeights))
	for p := range f.ProtoWeights {
		g.protoList = append(g.protoList, p)
	}
	sort.Slice(g.protoList, func(i, j int) bool { return g.protoList[i] < g.protoList[j] })
	weights := make([]float64, len(g.protoList))
	for i, p := range g.protoList {
		weights[i] = f.ProtoWeights[p]
	}
	g.protoCDF = cumulative(weights)
	return g
}

func (g *generator) rule() rule.Rule {
	r := rule.NewWildcardRule(0)
	r.Ranges[rule.DimSrcIP] = g.prefix(g.srcCDF, g.srcCentres)
	r.Ranges[rule.DimDstIP] = g.prefix(g.dstCDF, g.dstCentres)
	r.Ranges[rule.DimSrcPort] = g.port(g.f.SrcPortClasses)
	r.Ranges[rule.DimDstPort] = g.port(g.f.DstPortClasses)
	r.Ranges[rule.DimProto] = g.proto()
	return r
}

func (g *generator) prefix(cdf []float64, centres []uint32) rule.Range {
	plen := uint(sampleCDF(g.rng, cdf))
	if plen == 0 {
		return rule.FullRange(rule.DimSrcIP)
	}
	var addr uint32
	if g.rng.Float64() < g.f.AddressLocality {
		centre := centres[g.rng.Intn(len(centres))]
		// Jitter the low bits so that rules under the same centre still
		// differ; the amount of jitter shrinks as the prefix gets longer.
		jitterBits := uint(32) - plen + 6
		if jitterBits > 32 {
			jitterBits = 32
		}
		jitter := uint32(g.rng.Uint64()) & uint32((uint64(1)<<jitterBits)-1)
		addr = centre ^ jitter
	} else {
		addr = g.rng.Uint32()
	}
	return rule.PrefixRange(uint64(addr), plen, 32)
}

func (g *generator) port(classWeights [5]float64) rule.Range {
	cdf := cumulative(classWeights[:])
	switch PortClass(sampleCDF(g.rng, cdf)) {
	case PortWildcard:
		return rule.FullRange(rule.DimSrcPort)
	case PortHigh:
		return rule.Range{Lo: 1024, Hi: 65535}
	case PortLow:
		return rule.Range{Lo: 0, Hi: 1023}
	case PortArbitrary:
		a := uint64(g.rng.Intn(65536))
		width := uint64(1 + g.rng.Intn(8192))
		b := a + width
		if b > 65535 {
			b = 65535
		}
		return rule.Range{Lo: a, Hi: b}
	default: // PortExact
		p := uint64(wellKnownPorts[g.rng.Intn(len(wellKnownPorts))])
		return rule.Range{Lo: p, Hi: p}
	}
}

func (g *generator) proto() rule.Range {
	p := g.protoList[sampleCDF(g.rng, g.protoCDF)]
	if p == 0 {
		return rule.FullRange(rule.DimProto)
	}
	return rule.Range{Lo: uint64(p), Hi: uint64(p)}
}

// wellKnownPorts is the pool of exact-match ports the generator draws from,
// mirroring the service ports that dominate real classifiers.
var wellKnownPorts = []uint16{
	20, 21, 22, 23, 25, 53, 67, 68, 80, 110, 119, 123, 135, 137, 138, 139,
	143, 161, 162, 179, 389, 443, 445, 465, 514, 587, 636, 993, 995, 1433,
	1521, 1723, 3306, 3389, 5060, 5432, 8080, 8443,
}

func cumulative(weights []float64) []float64 {
	out := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		sum += w
		out[i] = sum
	}
	if sum == 0 {
		// Degenerate: make it uniform.
		for i := range out {
			out[i] = float64(i + 1)
		}
	}
	return out
}

func sampleCDF(rng *rand.Rand, cdf []float64) int {
	total := cdf[len(cdf)-1]
	x := rng.Float64() * total
	idx := sort.SearchFloat64s(cdf, x)
	if idx >= len(cdf) {
		idx = len(cdf) - 1
	}
	return idx
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
