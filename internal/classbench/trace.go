package classbench

import (
	"math"
	"math/rand"

	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// GenerateTrace builds a header trace of n packets for the given classifier,
// following the ClassBench trace_generator approach: each packet is sampled
// from inside the hyper-rectangle of a randomly chosen rule (so that the
// trace actually exercises the classifier rather than hitting only the
// default rule), and a Pareto-distributed repeat count introduces the
// temporal locality real traffic exhibits. The MatchRule field of each entry
// records the ground-truth winner found by linear search.
func GenerateTrace(s *rule.Set, n int, seed int64) []packet.TraceEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]packet.TraceEntry, 0, n)
	rules := s.Rules()
	if len(rules) == 0 || n <= 0 {
		return out
	}
	for len(out) < n {
		r := rules[rng.Intn(len(rules))]
		key := samplePacket(rng, r)
		match := s.MatchIndex(key)
		// Pareto(1, 1.5)-ish burst length, clamped.
		burst := int(math.Ceil(math.Pow(1-rng.Float64(), -1/1.5))) // >= 1
		if burst > 16 {
			burst = 16
		}
		for b := 0; b < burst && len(out) < n; b++ {
			out = append(out, packet.TraceEntry{Key: key, MatchRule: match})
		}
	}
	return out
}

// samplePacket draws a packet uniformly from inside the rule's box.
func samplePacket(rng *rand.Rand, r rule.Rule) rule.Packet {
	pick := func(d rule.Dimension) uint64 {
		rg := r.Ranges[d]
		span := rg.Size()
		if span == 0 {
			return rg.Lo
		}
		return rg.Lo + (rng.Uint64() % span)
	}
	return rule.Packet{
		SrcIP:   uint32(pick(rule.DimSrcIP)),
		DstIP:   uint32(pick(rule.DimDstIP)),
		SrcPort: uint16(pick(rule.DimSrcPort)),
		DstPort: uint16(pick(rule.DimDstPort)),
		Proto:   uint8(pick(rule.DimProto)),
	}
}

// ZipfTrace builds a skewed header trace: a fixed population of `flows`
// distinct packets is sampled from inside the classifier's rules (as in
// GenerateTrace), and the n trace entries draw from that population with
// Zipf-distributed popularity — rank-1 flows dominate, the tail is cold.
// This models the flow-size skew of real traffic (a small fraction of flows
// carries most packets) and is the workload a flow cache exploits.
//
// skew is the Zipf s parameter and must exceed 1 for the distribution to be
// defined; values in [1.1, 1.5] are typical. Non-positive or sub-1 values
// select 1.2. flows is clamped to [1, n]. Generation is deterministic in
// seed.
func ZipfTrace(s *rule.Set, n, flows int, skew float64, seed int64) []packet.TraceEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]packet.TraceEntry, 0, n)
	rules := s.Rules()
	if len(rules) == 0 || n <= 0 {
		return out
	}
	if flows < 1 {
		flows = 1
	}
	if flows > n {
		flows = n
	}
	if skew <= 1 {
		skew = 1.2
	}
	// Fixed flow population with ground-truth matches computed once.
	population := make([]packet.TraceEntry, flows)
	for i := range population {
		r := rules[rng.Intn(len(rules))]
		key := samplePacket(rng, r)
		population[i] = packet.TraceEntry{Key: key, MatchRule: s.MatchIndex(key)}
	}
	z := rand.NewZipf(rng, skew, 1, uint64(flows-1))
	for len(out) < n {
		out = append(out, population[z.Uint64()])
	}
	return out
}

// WorstCaseTrace wraps adversarially chosen packets into a ground-truth
// trace: each entry's MatchRule is recomputed by linear search, so the
// result plugs into every consumer of the ClassBench traces (differential
// harnesses, the perf lab). The packets typically come from a structure-
// aware generator — compiled.WorstCaseDepthPackets steers them to a tree's
// maximum-depth leaves, the longest dependent-load chains a lookup can take.
// (The generator lives with the compiled form and this wrapper here, because
// this package cannot import internal/compiled without a test import cycle.)
func WorstCaseTrace(s *rule.Set, packets []rule.Packet) []packet.TraceEntry {
	out := make([]packet.TraceEntry, len(packets))
	for i, p := range packets {
		out[i] = packet.TraceEntry{Key: p, MatchRule: s.MatchIndex(p)}
	}
	return out
}

// UniformTrace builds a trace of packets drawn uniformly from the whole
// header space, useful as an adversarial workload where most packets match
// only the default rule.
func UniformTrace(s *rule.Set, n int, seed int64) []packet.TraceEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]packet.TraceEntry, n)
	for i := range out {
		key := rule.Packet{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8(rng.Intn(256)),
		}
		out[i] = packet.TraceEntry{Key: key, MatchRule: s.MatchIndex(key)}
	}
	return out
}
