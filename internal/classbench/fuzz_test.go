package classbench

import (
	"strings"
	"testing"

	"neurocuts/internal/rule"
)

// FuzzParseRule asserts that arbitrary rule-file lines never panic the
// ClassBench parser: a malformed filter line must come back as an error, and
// every accepted line must yield a well-formed rule that survives a
// write/parse round trip. The seed corpus mixes real generated rules (one
// per family kind) with hand-picked malformed shapes.
func FuzzParseRule(f *testing.F) {
	for _, family := range []string{"acl1", "fw1", "ipc1"} {
		fam, err := FamilyByName(family)
		if err != nil {
			f.Fatal(err)
		}
		set := Generate(fam, 5, 1)
		for _, r := range set.Rules() {
			f.Add(rule.FormatClassBenchLine(r))
		}
	}
	malformed := []string{
		"",
		"@",
		"no leading at",
		"@1.2.3.4/33 5.6.7.8/0 0 : 65535 0 : 65535 0x06/0xFF",
		"@1.2.3.4/8 5.6.7.8/0 99999 : 3 0 : 65535 0x06/0xFF",
		"@1.2.3.4/8 5.6.7.8/0 5 : 3 0 : 65535 0x06/0xFF",
		"@1.2.3.4/8 5.6.7.8/0 0 ; 65535 0 : 65535 0x06/0xFF",
		"@1.2.3.4/8 5.6.7.8/0 0 : 65535 0 : 65535 0xZZ/0xFF",
		"@1.2.3.4/8 5.6.7.8/0 0 : 65535 0 : 65535 0x06/0x0F",
		"@256.0.0.1/8 5.6.7.8/0 0 : 65535 0 : 65535 0x06/0xFF",
		"@1.2.3.4/8 5.6.7.8/0 0 : 65535 0 : 65535",
		"@\x00\xff/0 0.0.0.0/0 0 : 0 0 : 0 0/0",
	}
	for _, s := range malformed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		r, err := rule.ParseClassBenchLine(line)
		if err != nil {
			return
		}
		// Accepted rules must be structurally valid...
		set := rule.NewSet([]rule.Rule{r})
		if err := set.Validate(); err != nil {
			t.Fatalf("parse of %q accepted an invalid rule: %v", line, err)
		}
		// ...and port/proto fields must round-trip exactly through the
		// writer (IP ranges may legitimately widen to a covering prefix).
		again, err := rule.ParseClassBenchLine(strings.TrimSpace(rule.FormatClassBenchLine(r)))
		if err != nil {
			t.Fatalf("re-parsing formatted rule %q: %v", rule.FormatClassBenchLine(r), err)
		}
		for _, d := range []rule.Dimension{rule.DimSrcPort, rule.DimDstPort, rule.DimProto} {
			if again.Ranges[d] != r.Ranges[d] {
				t.Errorf("%s of %q changed across round trip: %v -> %v", d, line, r.Ranges[d], again.Ranges[d])
			}
		}
	})
}
