package classbench

import (
	"bytes"
	"testing"

	"neurocuts/internal/rule"
)

func TestFamilies(t *testing.T) {
	fams := Families()
	if len(fams) != 12 {
		t.Fatalf("Families() returned %d entries, want 12", len(fams))
	}
	wantNames := []string{"acl1", "acl2", "acl3", "acl4", "acl5", "fw1", "fw2", "fw3", "fw4", "fw5", "ipc1", "ipc2"}
	for i, f := range fams {
		if f.Name != wantNames[i] {
			t.Errorf("family %d = %q, want %q", i, f.Name, wantNames[i])
		}
		if f.Centres <= 0 || f.AddressLocality <= 0 || f.AddressLocality > 1 {
			t.Errorf("family %s has degenerate parameters: %+v", f.Name, f)
		}
	}
	if KindACL.String() != "acl" || KindFW.String() != "fw" || KindIPC.String() != "ipc" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestFamilyByName(t *testing.T) {
	f, err := FamilyByName("  FW3 ")
	if err != nil || f.Name != "fw3" || f.Kind != KindFW {
		t.Fatalf("FamilyByName = %+v, %v", f, err)
	}
	if _, err := FamilyByName("acl9"); err == nil {
		t.Error("unknown family should error")
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	for _, f := range Families() {
		s := Generate(f, 200, 1)
		if s.Len() < 150 || s.Len() > 200 {
			t.Errorf("%s: generated %d rules, want close to 200", f.Name, s.Len())
		}
		if !s.HasDefaultRule() {
			t.Errorf("%s: missing default rule", f.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: invalid rules: %v", f.Name, err)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	f, _ := FamilyByName("acl1")
	a := Generate(f, 100, 7)
	b := Generate(f, 100, 7)
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic size: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Rule(i).Ranges != b.Rule(i).Ranges {
			t.Fatalf("rule %d differs between identical generations", i)
		}
	}
	c := Generate(f, 100, 8)
	same := true
	for i := 0; i < a.Len() && i < c.Len(); i++ {
		if a.Rule(i).Ranges != c.Rule(i).Ranges {
			same = false
			break
		}
	}
	if same && a.Len() == c.Len() {
		t.Error("different seeds produced identical classifiers")
	}
}

func TestFamilySignatures(t *testing.T) {
	// The structural signature the decision-tree algorithms care about:
	// firewall seeds must have far more source-IP wildcards than ACL seeds.
	acl, _ := FamilyByName("acl1")
	fw, _ := FamilyByName("fw1")
	aclStats := Generate(acl, 1000, 3).ComputeStats()
	fwStats := Generate(fw, 1000, 3).ComputeStats()

	if fwStats.WildcardFraction[rule.DimSrcIP] <= aclStats.WildcardFraction[rule.DimSrcIP] {
		t.Errorf("fw src wildcard fraction (%v) should exceed acl (%v)",
			fwStats.WildcardFraction[rule.DimSrcIP], aclStats.WildcardFraction[rule.DimSrcIP])
	}
	if fwStats.AvgWildcards <= aclStats.AvgWildcards {
		t.Errorf("fw avg wildcards (%v) should exceed acl (%v)", fwStats.AvgWildcards, aclStats.AvgWildcards)
	}
	// ACL classifiers should carry plenty of distinct, specific IP prefixes.
	if aclStats.DistinctRanges[rule.DimSrcIP] < 100 {
		t.Errorf("acl1 has only %d distinct src ranges", aclStats.DistinctRanges[rule.DimSrcIP])
	}
}

func TestGenerateSizeOneAndClamping(t *testing.T) {
	f, _ := FamilyByName("ipc1")
	s := Generate(f, 0, 1)
	if s.Len() != 1 || !s.HasDefaultRule() {
		t.Fatalf("size-0 generation = %d rules", s.Len())
	}
	s = Generate(f, 1, 1)
	if s.Len() != 1 {
		t.Fatalf("size-1 generation = %d rules", s.Len())
	}
}

func TestGeneratedClassifierRoundTripsThroughClassBenchFormat(t *testing.T) {
	f, _ := FamilyByName("acl2")
	s := Generate(f, 50, 11)
	var buf bytes.Buffer
	if err := rule.WriteClassBench(&buf, s); err != nil {
		t.Fatal(err)
	}
	parsed, err := rule.ParseClassBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != s.Len() {
		t.Fatalf("round trip size %d != %d", parsed.Len(), s.Len())
	}
}

func TestGenerateTrace(t *testing.T) {
	f, _ := FamilyByName("fw2")
	s := Generate(f, 100, 5)
	trace := GenerateTrace(s, 500, 9)
	if len(trace) != 500 {
		t.Fatalf("trace length %d", len(trace))
	}
	nonDefault := 0
	for i, e := range trace {
		if e.MatchRule < 0 || e.MatchRule >= s.Len() {
			t.Fatalf("entry %d has match %d outside classifier", i, e.MatchRule)
		}
		got := s.MatchIndex(e.Key)
		if got != e.MatchRule {
			t.Fatalf("entry %d ground truth %d but linear search says %d", i, e.MatchRule, got)
		}
		if e.MatchRule != s.Len()-1 {
			nonDefault++
		}
	}
	// The trace must actually exercise the classifier, not just the default
	// rule.
	if nonDefault < len(trace)/4 {
		t.Errorf("only %d/%d packets matched a non-default rule", nonDefault, len(trace))
	}
	// Determinism.
	again := GenerateTrace(s, 500, 9)
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatalf("trace generation not deterministic at %d", i)
		}
	}
	// Degenerate inputs.
	if got := GenerateTrace(rule.NewSet(nil), 10, 1); len(got) != 0 {
		t.Error("empty classifier should produce empty trace")
	}
	if got := GenerateTrace(s, 0, 1); len(got) != 0 {
		t.Error("zero-length trace should be empty")
	}
}

func TestUniformTrace(t *testing.T) {
	f, _ := FamilyByName("acl1")
	s := Generate(f, 50, 2)
	trace := UniformTrace(s, 200, 3)
	if len(trace) != 200 {
		t.Fatalf("trace length %d", len(trace))
	}
	for i, e := range trace {
		if got := s.MatchIndex(e.Key); got != e.MatchRule {
			t.Fatalf("entry %d ground truth mismatch", i)
		}
	}
}

func TestTraceLocality(t *testing.T) {
	f, _ := FamilyByName("acl3")
	s := Generate(f, 100, 1)
	trace := GenerateTrace(s, 1000, 4)
	// Bursts mean consecutive duplicates should appear.
	dups := 0
	for i := 1; i < len(trace); i++ {
		if trace[i].Key == trace[i-1].Key {
			dups++
		}
	}
	if dups == 0 {
		t.Error("expected temporal locality (repeated packets) in the trace")
	}
}
