package classbench

import (
	"reflect"
	"testing"
)

func TestZipfTraceSkewAndDeterminism(t *testing.T) {
	fam, err := FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := Generate(fam, 100, 1)

	const n, flows = 8000, 50
	trace := ZipfTrace(set, n, flows, 1.2, 9)
	if len(trace) != n {
		t.Fatalf("trace length %d, want %d", len(trace), n)
	}

	// Ground truth must agree with linear search, and the distinct-flow
	// count must not exceed the requested population.
	counts := map[[2]uint64]int{}
	for i, e := range trace {
		if got := set.MatchIndex(e.Key); got != e.MatchRule {
			t.Fatalf("entry %d: MatchRule %d, linear search says %d", i, e.MatchRule, got)
		}
		k := [2]uint64{uint64(e.Key.SrcIP)<<32 | uint64(e.Key.DstIP),
			uint64(e.Key.SrcPort)<<32 | uint64(e.Key.DstPort)<<16 | uint64(e.Key.Proto)}
		counts[k]++
	}
	if len(counts) > flows {
		t.Fatalf("%d distinct flows, want <= %d", len(counts), flows)
	}

	// Zipf skew: the hottest flow should carry well more than a uniform
	// share (n/flows packets would be the uniform expectation).
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	if hottest < 3*n/flows {
		t.Errorf("hottest flow carries %d packets; expected heavy skew (> %d)", hottest, 3*n/flows)
	}

	// Determinism in the seed.
	again := ZipfTrace(set, n, flows, 1.2, 9)
	if !reflect.DeepEqual(trace, again) {
		t.Error("same seed produced different traces")
	}
	other := ZipfTrace(set, n, flows, 1.2, 10)
	if reflect.DeepEqual(trace, other) {
		t.Error("different seeds produced identical traces")
	}
}

func TestZipfTraceEdgeCases(t *testing.T) {
	fam, err := FamilyByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	set := Generate(fam, 20, 1)

	if got := ZipfTrace(set, 0, 10, 1.2, 1); len(got) != 0 {
		t.Errorf("n=0: %d entries", len(got))
	}
	// flows clamped to [1, n]; invalid skew falls back to the default.
	one := ZipfTrace(set, 16, 0, 0, 1)
	if len(one) != 16 {
		t.Fatalf("length %d", len(one))
	}
	first := one[0]
	for _, e := range one {
		if e.Key != first.Key {
			t.Fatal("flows=1 should repeat a single flow")
		}
	}
}
