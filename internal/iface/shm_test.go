package iface

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// allocShmSet builds the small deterministic classifier the shm tests (and
// the shm alloc gate) serve.
func allocShmSet(t testing.TB) *rule.Set {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	return classbench.Generate(fam, 128, 1)
}

// allocShmPackets draws rule-biased packets against set.
func allocShmPackets(t testing.TB, set *rule.Set, n int) []rule.Packet {
	t.Helper()
	entries := classbench.GenerateTrace(set, n, 7)
	ps := make([]rule.Packet, len(entries))
	for i, e := range entries {
		ps[i] = e.Key
	}
	return ps
}

// newShmPair starts a server over a linear engine plus an attached client in
// a temp dir, cleaning both up at test end.
func newShmPair(t *testing.T, slots int) (*ShmServer, *ShmClient, *engine.Engine, *rule.Set) {
	t.Helper()
	set := allocShmSet(t)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	path := filepath.Join(t.TempDir(), "ring")
	srv, err := NewShmServer(path, eng, ShmServerConfig{Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := OpenShmClient(path, ShmClientConfig{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c, eng, set
}

// TestShmRoundTrip pushes batches of every awkward size through the ring
// and checks each result against the engine classified directly.
func TestShmRoundTrip(t *testing.T) {
	srv, c, eng, set := newShmPair(t, 64)
	ps := allocShmPackets(t, set, 500)
	want := make([]engine.Result, len(ps))
	eng.ClassifyBatch(ps, want)

	for _, size := range []int{1, 2, 31, 32, 33, 64, 65, 500} {
		got := make([]engine.Result, size)
		if err := c.ClassifyBatchInto(ps[:size], got); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for i := 0; i < size; i++ {
			if got[i].OK != want[i].OK || got[i].Rule.ID != want[i].Rule.ID || got[i].Rule.Priority != want[i].Rule.Priority {
				t.Fatalf("size %d: packet %d: ring says id=%d prio=%d ok=%v, engine says id=%d prio=%d ok=%v",
					size, i, got[i].Rule.ID, got[i].Rule.Priority, got[i].OK,
					want[i].Rule.ID, want[i].Rule.Priority, want[i].OK)
			}
		}
	}
	if st := srv.Stats(); st.Packets == 0 || st.Batches == 0 {
		t.Fatalf("server stats empty after traffic: %+v", st)
	}

	// Single-packet path shares the same contract.
	id, prio, ok, err := c.Classify(ps[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok != want[0].OK || id != want[0].Rule.ID || prio != want[0].Rule.Priority {
		t.Fatalf("Classify: got id=%d prio=%d ok=%v, want id=%d prio=%d ok=%v",
			id, prio, ok, want[0].Rule.ID, want[0].Rule.Priority, want[0].OK)
	}
}

// TestShmConcurrentCallers hammers one client from many goroutines. The
// client's mutex must preserve the single-producer ring discipline; run
// under -race this is the iface CI job's main race test.
func TestShmConcurrentCallers(t *testing.T) {
	_, c, eng, set := newShmPair(t, 128)
	ps := allocShmPackets(t, set, 256)
	want := make([]engine.Result, len(ps))
	eng.ClassifyBatch(ps, want)

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]engine.Result, len(ps))
			for r := 0; r < rounds; r++ {
				lo := (w*31 + r*17) % (len(ps) - 1)
				hi := lo + 1 + (w+r)%(len(ps)-lo)
				if err := c.ClassifyBatchInto(ps[lo:hi], out[:hi-lo]); err != nil {
					errc <- err
					return
				}
				for i := lo; i < hi; i++ {
					if g := out[i-lo]; g.OK != want[i].OK || g.Rule.ID != want[i].Rule.ID {
						t.Errorf("worker %d round %d: packet %d: id=%d ok=%v, want id=%d ok=%v",
							w, r, i, g.Rule.ID, g.OK, want[i].Rule.ID, want[i].OK)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestShmServerClose pins the shutdown contract: a client blocked on (or
// arriving after) a closed ring gets ErrShmClosed, not a stall, and the
// ring file is removed.
func TestShmServerClose(t *testing.T) {
	set := allocShmSet(t)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	path := filepath.Join(t.TempDir(), "ring")
	srv, err := NewShmServer(path, eng, ShmServerConfig{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenShmClient(path, ShmClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("ring file still present after Close: %v", statErr)
	}
	ps := allocShmPackets(t, set, 4)
	out := make([]engine.Result, len(ps))
	if err := c.ClassifyBatchInto(ps, out); !errors.Is(err, ErrShmClosed) {
		t.Fatalf("after server close: err = %v, want ErrShmClosed", err)
	}

	// Closing the client makes further calls fail locally.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.ClassifyBatchInto(ps, out); !errors.Is(err, ErrShmClosed) {
		t.Fatalf("after client close: err = %v, want ErrShmClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestShmStalledPeer pins the watchdog: a region whose serving process is
// gone (state still ready, nobody draining) surfaces ErrShmStalled after
// the timeout instead of blocking forever.
func TestShmStalledPeer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring")
	// Fabricate a ready region by hand — a server whose loop died.
	const slots = 64
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, shmFileSize(slots))
	binary.LittleEndian.PutUint64(hdr[shmOffMagic:], shmMagic)
	binary.LittleEndian.PutUint32(hdr[shmOffVersion:], shmVersion)
	binary.LittleEndian.PutUint32(hdr[shmOffSlots:], slots)
	binary.LittleEndian.PutUint32(hdr[shmOffState:], shmStateReady)
	if _, err := f.Write(hdr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c, err := OpenShmClient(path, ShmClientConfig{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]engine.Result, 1)
	if err := c.ClassifyBatchInto([]rule.Packet{{SrcIP: 1}}, out); !errors.Is(err, ErrShmStalled) {
		t.Fatalf("err = %v, want ErrShmStalled", err)
	}
}

// TestShmHandshakeValidation pins the fail-fast paths: structurally wrong
// files are rejected without waiting out the attach timeout.
func TestShmHandshakeValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, mutate func(hdr []byte)) string {
		path := filepath.Join(dir, name)
		hdr := make([]byte, shmFileSize(64))
		binary.LittleEndian.PutUint64(hdr[shmOffMagic:], shmMagic)
		binary.LittleEndian.PutUint32(hdr[shmOffVersion:], shmVersion)
		binary.LittleEndian.PutUint32(hdr[shmOffSlots:], 64)
		binary.LittleEndian.PutUint32(hdr[shmOffState:], shmStateReady)
		mutate(hdr)
		if err := os.WriteFile(path, hdr, 0o600); err != nil {
			t.Fatal(err)
		}
		return path
	}

	fast := []struct {
		name   string
		mutate func([]byte)
	}{
		{"bad version", func(h []byte) { binary.LittleEndian.PutUint32(h[shmOffVersion:], 99) }},
		{"slots not a power of two", func(h []byte) { binary.LittleEndian.PutUint32(h[shmOffSlots:], 63) }},
		{"slots zero", func(h []byte) { binary.LittleEndian.PutUint32(h[shmOffSlots:], 0) }},
		{"slots absurd", func(h []byte) { binary.LittleEndian.PutUint32(h[shmOffSlots:], 1<<25) }},
	}
	for _, tc := range fast {
		path := write("f_"+tc.name, tc.mutate)
		start := time.Now()
		_, err := OpenShmClient(path, ShmClientConfig{Timeout: 5 * time.Second})
		if !errors.Is(err, ErrShmHandshake) {
			t.Fatalf("%s: err = %v, want ErrShmHandshake", tc.name, err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("%s: structural rejection took %v, want fail-fast", tc.name, d)
		}
	}

	// Retryable shapes (absent file, bad magic, not-ready state) wait out
	// the timeout — the server might still be coming up — then fail.
	slow := []struct {
		name string
		path func() string
	}{
		{"absent", func() string { return filepath.Join(dir, "nonexistent") }},
		{"bad magic", func() string {
			return write("s_magic", func(h []byte) { binary.LittleEndian.PutUint64(h[shmOffMagic:], 7) })
		}},
		{"not ready", func() string {
			return write("s_state", func(h []byte) { binary.LittleEndian.PutUint32(h[shmOffState:], shmStateInit) })
		}},
	}
	for _, tc := range slow {
		if _, err := OpenShmClient(tc.path(), ShmClientConfig{Timeout: 50 * time.Millisecond}); err == nil {
			t.Fatalf("%s: attach unexpectedly succeeded", tc.name)
		}
	}
}

// TestShmSlotRounding pins that requested slot counts round up to a power
// of two and the client sees the same capacity.
func TestShmSlotRounding(t *testing.T) {
	set := allocShmSet(t)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	path := filepath.Join(t.TempDir(), "ring")
	srv, err := NewShmServer(path, eng, ShmServerConfig{Slots: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Slots() != 128 {
		t.Fatalf("server slots = %d, want 128", srv.Slots())
	}
	c, err := OpenShmClient(path, ShmClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Slots() != 128 {
		t.Fatalf("client slots = %d, want 128", c.Slots())
	}
}
