package iface

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"time"

	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// Classic pcap (libpcap savefile) constants. Only the classic format is
// spoken — pcapng files fail fast with ErrNotPcap.
const (
	pcapMagicMicroLE = 0xa1b2c3d4 // little-endian file, microsecond stamps
	pcapMagicMicroBE = 0xd4c3b2a1 // big-endian file, microsecond stamps
	pcapMagicNanoLE  = 0xa1b23c4d // little-endian file, nanosecond stamps
	pcapMagicNanoBE  = 0x4d3cb2a1 // big-endian file, nanosecond stamps

	pcapGlobalHeaderLen = 24
	pcapRecordHeaderLen = 16

	// LinkTypeEthernet and LinkTypeRawIP are the two capture link types the
	// decoder understands (DLT_EN10MB and DLT_RAW).
	LinkTypeEthernet = 1
	LinkTypeRawIP    = 101

	// EtherTypes relevant to the decode path.
	etherTypeIPv4  = 0x0800
	etherTypeVLAN  = 0x8100 // 802.1Q
	etherTypeQinQ  = 0x88a8 // 802.1ad service tag
	etherTypeQinQ2 = 0x9100 // legacy QinQ

	// defaultMaxPacketBytes bounds one record's captured length; anything
	// larger is treated as corruption rather than an allocation request.
	defaultMaxPacketBytes = 256 * 1024
)

// PcapConfig configures a PcapReader.
type PcapConfig struct {
	// Rate selects the replay pacing mode. 0 (the default) replays at
	// maximum rate: ReadBatch never sleeps. Any positive value r replays at
	// r times the recorded speed, honouring the capture's inter-arrival
	// gaps: 1 reproduces the original pacing exactly, 2 halves every gap,
	// 0.5 doubles them. Pacing is applied against the wall clock starting
	// at the first packet, so a replay cannot drift: a slow consumer is
	// simply never slept for.
	Rate float64
	// MaxPacketBytes caps a single record's captured length (default 256
	// KiB); longer records indicate corruption and fail the read.
	MaxPacketBytes int
}

// PcapReader replays a classic pcap stream as a Source. The reader owns all
// its buffers: the steady-state ReadBatch path performs zero heap
// allocations per call.
type PcapReader struct {
	r   io.Reader
	c   io.Closer // non-nil when the reader owns the underlying file
	cfg PcapConfig

	bigEndian bool
	nanos     bool // timestamp fraction is nanoseconds, not microseconds
	linkType  uint32

	// frame is the per-record read buffer, grown once to the first record
	// that needs more (bounded by MaxPacketBytes).
	frame  []byte
	recHdr [pcapRecordHeaderLen]byte
	dec    packet.Decoder

	// off is the stream offset of the next unread byte; recOff is the
	// offset where the record currently being read started, which is what
	// a TornTailError reports.
	off    int64
	recOff int64

	// Pacing state: ts0 is the first record's timestamp, start the wall
	// clock when it was emitted.
	started bool
	ts0     uint64 // nanoseconds
	start   time.Time

	// One-record lookahead: when pacing finds the next packet is not due
	// yet and the batch already holds packets, the decoded key is parked
	// here for the next ReadBatch instead of sleeping mid-batch.
	pending   bool
	pendingP  rule.Packet
	pendingTS uint64

	stats SourceStats
}

// NewPcapReader parses the pcap global header from r and returns a reader
// positioned at the first record.
func NewPcapReader(r io.Reader, cfg PcapConfig) (*PcapReader, error) {
	if cfg.MaxPacketBytes <= 0 {
		cfg.MaxPacketBytes = defaultMaxPacketBytes
	}
	p := &PcapReader{r: r, cfg: cfg, frame: make([]byte, 2048)}
	var hdr [pcapGlobalHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	p.off = int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrNotPcap
		}
		return nil, err
	}
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case pcapMagicMicroLE:
	case pcapMagicNanoLE:
		p.nanos = true
	case pcapMagicMicroBE:
		p.bigEndian = true
	case pcapMagicNanoBE:
		p.bigEndian, p.nanos = true, true
	default:
		return nil, ErrNotPcap
	}
	if major := p.u16(hdr[4:6]); major != 2 {
		return nil, ErrPcapVersion
	}
	p.linkType = p.u32(hdr[20:24])
	if p.linkType != LinkTypeEthernet && p.linkType != LinkTypeRawIP {
		return nil, ErrLinkType
	}
	return p, nil
}

// OpenPcap opens a pcap file for replay; Close closes the file.
func OpenPcap(path string, cfg PcapConfig) (*PcapReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	p, err := NewPcapReader(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	p.c = f
	return p, nil
}

// u16 and u32 decode in the stream's byte order.
func (p *PcapReader) u16(b []byte) uint16 {
	if p.bigEndian {
		return binary.BigEndian.Uint16(b)
	}
	return binary.LittleEndian.Uint16(b)
}

func (p *PcapReader) u32(b []byte) uint32 {
	if p.bigEndian {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// LinkType returns the capture's link type.
func (p *PcapReader) LinkType() uint32 { return p.linkType }

// Stats returns the reader's running counters.
func (p *PcapReader) Stats() SourceStats { return p.stats }

// Offset returns the stream offset of the next unread byte.
func (p *PcapReader) Offset() int64 { return p.off }

// ErrPacketTooLarge wraps records whose captured length exceeds
// PcapConfig.MaxPacketBytes.
var ErrPacketTooLarge = errors.New("iface: pcap record exceeds MaxPacketBytes")

// nextKey reads records until one decodes into a classification key,
// returning the key and its capture timestamp in nanoseconds. Frames that
// are not classifiable IPv4 (wrong ethertype, truncated headers) are
// counted in Skipped and passed over. io.EOF means a clean end exactly at a
// record boundary; a *TornTailError means the stream ended mid-record.
func (p *PcapReader) nextKey() (rule.Packet, uint64, error) {
	for {
		p.recOff = p.off
		n, err := io.ReadFull(p.r, p.recHdr[:])
		p.off += int64(n)
		if err == io.EOF {
			return rule.Packet{}, 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return rule.Packet{}, 0, &TornTailError{Offset: p.recOff, What: "record header"}
		}
		if err != nil {
			return rule.Packet{}, 0, err
		}
		incl := p.u32(p.recHdr[8:12])
		if int(incl) > p.cfg.MaxPacketBytes {
			return rule.Packet{}, 0, ErrPacketTooLarge
		}
		if cap(p.frame) < int(incl) {
			p.frame = make([]byte, incl)
		}
		body := p.frame[:incl]
		n, err = io.ReadFull(p.r, body)
		p.off += int64(n)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return rule.Packet{}, 0, &TornTailError{Offset: p.recOff, What: "record body"}
		}
		if err != nil {
			return rule.Packet{}, 0, err
		}
		ts := uint64(p.u32(p.recHdr[0:4])) * uint64(time.Second)
		if p.nanos {
			ts += uint64(p.u32(p.recHdr[4:8]))
		} else {
			ts += uint64(p.u32(p.recHdr[4:8])) * uint64(time.Microsecond)
		}
		key, ok := p.decodeFrame(body)
		if !ok {
			p.stats.Skipped++
			continue
		}
		return key, ts, nil
	}
}

// decodeFrame extracts the IPv4 5-tuple from one captured frame.
func (p *PcapReader) decodeFrame(frame []byte) (rule.Packet, bool) {
	payload := frame
	if p.linkType == LinkTypeEthernet {
		var ok bool
		payload, ok = ethPayload(frame)
		if !ok {
			return rule.Packet{}, false
		}
	}
	key, err := p.dec.Decode(payload)
	if err != nil {
		return rule.Packet{}, false
	}
	return key, true
}

// ethPayload strips the Ethernet header and any 802.1Q/802.1ad VLAN tags,
// returning the IPv4 payload, or ok=false for other ethertypes or frames
// too short to hold their headers.
func ethPayload(frame []byte) ([]byte, bool) {
	if len(frame) < 14 {
		return nil, false
	}
	et := binary.BigEndian.Uint16(frame[12:14])
	off := 14
	// A frame can carry stacked tags (QinQ); four deep covers anything a
	// real network produces while keeping the loop bounded for the fuzzer.
	for tags := 0; tags < 4 && (et == etherTypeVLAN || et == etherTypeQinQ || et == etherTypeQinQ2); tags++ {
		if len(frame) < off+4 {
			return nil, false
		}
		et = binary.BigEndian.Uint16(frame[off+2 : off+4])
		off += 4
	}
	if et != etherTypeIPv4 {
		return nil, false
	}
	return frame[off:], true
}

// ReadBatch implements Source. With pacing enabled (Rate > 0) it emits
// every packet already due by the wall clock; when none is due it sleeps
// until the next one is, so a batch never splits a sleep across its
// packets — callers get the largest batch the recorded schedule allows.
func (p *PcapReader) ReadBatch(ps []rule.Packet) (int, error) {
	n := 0
	for n < len(ps) {
		var key rule.Packet
		var ts uint64
		if p.pending {
			key, ts = p.pendingP, p.pendingTS
			p.pending = false
		} else {
			var err error
			key, ts, err = p.nextKey()
			if err != nil {
				if n > 0 && err == io.EOF {
					return n, nil
				}
				return n, err
			}
		}
		if p.cfg.Rate > 0 {
			if !p.started {
				p.started = true
				p.ts0 = ts
				p.start = time.Now()
			}
			due := p.start.Add(time.Duration(float64(ts-p.ts0) / p.cfg.Rate))
			if wait := time.Until(due); wait > 0 {
				if n > 0 {
					// Hold the packet for the next batch rather than
					// sleeping with delivered packets in hand.
					p.pending, p.pendingP, p.pendingTS = true, key, ts
					return n, nil
				}
				time.Sleep(wait)
			}
		}
		ps[n] = key
		n++
		p.stats.Packets++
	}
	return n, nil
}

// Close closes the underlying file when the reader owns one.
func (p *PcapReader) Close() error {
	if p.c != nil {
		return p.c.Close()
	}
	return nil
}
