//go:build linux

package iface

import (
	"errors"
	"net"
	"syscall"
	"testing"
	"time"

	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// TestAFPacketLoopbackSmoke captures its own UDP traffic on the loopback
// interface and checks the decoded 5-tuples. Without CAP_NET_RAW (ordinary
// CI users, unprivileged sandboxes) the socket call fails with EPERM/EACCES
// and the test skips — the capability, not the code, is absent.
func TestAFPacketLoopbackSmoke(t *testing.T) {
	src, err := OpenAFPacket("lo", AFPacketConfig{PollTimeout: 50 * time.Millisecond})
	if err != nil {
		if errors.Is(err, syscall.EPERM) || errors.Is(err, syscall.EACCES) {
			t.Skipf("no CAP_NET_RAW: %v", err)
		}
		t.Fatal(err)
	}
	defer src.Close()

	// A loopback UDP flow we can recognise: fixed payload, known ports.
	dst, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	conn, err := net.DialUDP("udp4", nil, dst.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wantSrc := uint16(conn.LocalAddr().(*net.UDPAddr).Port)
	wantDst := uint16(dst.LocalAddr().(*net.UDPAddr).Port)

	deadline := time.Now().Add(5 * time.Second)
	ps := make([]rule.Packet, 64)
	for time.Now().Before(deadline) {
		if _, err := conn.Write([]byte("iface loopback smoke")); err != nil {
			t.Fatal(err)
		}
		n, err := src.ReadBatch(ps)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p := ps[i]
			if p.Proto == packet.ProtoUDP && p.SrcPort == wantSrc && p.DstPort == wantDst &&
				p.SrcIP == 0x7f000001 && p.DstIP == 0x7f000001 {
				if st := src.Stats(); st.Packets == 0 {
					t.Fatal("stats did not count delivered packets")
				}
				return // captured and decoded our own flow
			}
		}
	}
	t.Fatal("did not capture the loopback flow within the deadline")
}

// TestAFPacketBadInterface pins the error path for a nonexistent interface
// (still requires the socket to open, so it skips without the capability).
func TestAFPacketBadInterface(t *testing.T) {
	_, err := OpenAFPacket("definitely-not-a-real-interface0", AFPacketConfig{})
	if err == nil {
		t.Fatal("open of a nonexistent interface succeeded")
	}
	if errors.Is(err, syscall.EPERM) || errors.Is(err, syscall.EACCES) {
		t.Skipf("no CAP_NET_RAW: %v", err)
	}
}
