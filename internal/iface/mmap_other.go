//go:build !unix

package iface

import "os"

// mmapFile fails on platforms without shared file mappings; the
// shared-memory transport is unavailable there (ErrShmUnsupported).
func mmapFile(f *os.File, size int) ([]byte, error) { return nil, ErrShmUnsupported }

// munmapFile is a no-op on platforms without mmap.
func munmapFile(b []byte) error { return nil }
