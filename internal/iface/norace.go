//go:build !race

package iface

// raceEnabled is false in normal builds; see race.go.
const raceEnabled = false
