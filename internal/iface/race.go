//go:build race

package iface

// raceEnabled gates the allocation-budget tests: the race detector
// instruments allocation sites and makes AllocsPerRun meaningless, so the
// zero-alloc gates run in the non-race CI pass (same split as the
// dataplane's).
const raceEnabled = true
