//go:build linux

package iface

import (
	"fmt"
	"net"
	"os"
	"syscall"
	"time"

	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// AFPacketConfig configures a live capture.
type AFPacketConfig struct {
	// PollTimeout bounds how long one empty socket read blocks; it is the
	// ceiling on ReadBatch's added latency for a partially filled batch and
	// on how often a quiet capture loop gets control back (default 10ms).
	PollTimeout time.Duration
	// SnapLen is the per-frame read buffer size (default 65536).
	SnapLen int
}

// AFPacketSource captures live frames from a Linux network interface
// through an AF_PACKET raw socket and decodes them into classification
// keys. Opening one requires CAP_NET_RAW; OpenAFPacket surfaces the
// EPERM/EACCES so callers (and the loopback smoke test) can detect the
// missing capability and degrade gracefully.
type AFPacketSource struct {
	fd    int
	frame []byte
	dec   packet.Decoder
	stats SourceStats
}

// htons converts a short to network byte order.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

// OpenAFPacket opens a raw capture socket bound to the named interface
// (every interface when name is empty).
func OpenAFPacket(name string, cfg AFPacketConfig) (*AFPacketSource, error) {
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 10 * time.Millisecond
	}
	if cfg.SnapLen <= 0 {
		cfg.SnapLen = 65536
	}
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(syscall.ETH_P_ALL)))
	if err != nil {
		return nil, fmt.Errorf("iface: AF_PACKET socket (CAP_NET_RAW required): %w", err)
	}
	if name != "" {
		ifi, err := net.InterfaceByName(name)
		if err != nil {
			syscall.Close(fd)
			return nil, fmt.Errorf("iface: interface %q: %w", name, err)
		}
		sa := &syscall.SockaddrLinklayer{Protocol: htons(syscall.ETH_P_ALL), Ifindex: ifi.Index}
		if err := syscall.Bind(fd, sa); err != nil {
			syscall.Close(fd)
			return nil, fmt.Errorf("iface: bind %q: %w", name, err)
		}
	}
	tv := syscall.NsecToTimeval(cfg.PollTimeout.Nanoseconds())
	if err := syscall.SetsockoptTimeval(fd, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv); err != nil {
		syscall.Close(fd)
		return nil, os.NewSyscallError("setsockopt SO_RCVTIMEO", err)
	}
	return &AFPacketSource{fd: fd, frame: make([]byte, cfg.SnapLen)}, nil
}

// ReadBatch implements Source for live capture: it fills ps with frames
// already queued on the socket and returns as soon as a read would block
// with at least one packet in hand. With no traffic at all it returns
// (0, nil) after the poll timeout so the caller can check for shutdown.
// Non-IPv4 frames are counted in Skipped and passed over.
func (s *AFPacketSource) ReadBatch(ps []rule.Packet) (int, error) {
	n := 0
	for n < len(ps) {
		m, err := syscall.Read(s.fd, s.frame)
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK {
			return n, nil
		}
		if err != nil {
			return n, os.NewSyscallError("read", err)
		}
		if m <= 0 {
			return n, nil
		}
		payload, ok := ethPayload(s.frame[:m])
		if !ok {
			s.stats.Skipped++
			continue
		}
		key, err := s.dec.Decode(payload)
		if err != nil {
			s.stats.Skipped++
			continue
		}
		ps[n] = key
		n++
		s.stats.Packets++
	}
	return n, nil
}

// Stats returns the capture's running counters.
func (s *AFPacketSource) Stats() SourceStats { return s.stats }

// Close closes the capture socket.
func (s *AFPacketSource) Close() error { return syscall.Close(s.fd) }
