package iface

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// TestZeroAllocPcapRead pins the pcap replay steady state at zero heap
// allocations per ReadBatch: the reader's frame buffer, record header and
// decoder are all reused, so replaying a multi-gigabyte capture costs no GC.
func TestZeroAllocPcapRead(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is meaningless under -race; the alloc gate runs in the non-race CI pass")
	}
	entries := testTrace(t, 8000)
	data := tracePcap(t, entries)
	r, err := NewPcapReader(bytes.NewReader(data), PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: first reads may grow the frame buffer once.
	ps := make([]rule.Packet, 64)
	if _, err := r.ReadBatch(ps); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := r.ReadBatch(ps); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("pcap ReadBatch allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocShmClient pins the shared-memory batch path at zero heap
// allocations per ClassifyBatchInto call. The backing engine is linear —
// itself allocation-free — because AllocsPerRun counts every allocation in
// the process, including the server loop running concurrently.
func TestZeroAllocShmClient(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is meaningless under -race; the alloc gate runs in the non-race CI pass")
	}
	set := allocShmSet(t)
	eng, err := engine.NewEngine("linear", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	path := filepath.Join(t.TempDir(), "ring")
	srv, err := NewShmServer(path, eng, ShmServerConfig{Slots: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := OpenShmClient(path, ShmClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ps := allocShmPackets(t, set, 200) // 200 > slots/2: exercises chunking too
	out := make([]engine.Result, len(ps))
	if err := c.ClassifyBatchInto(ps, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.ClassifyBatchInto(ps, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("shm ClassifyBatchInto allocates %.1f allocs/op, want 0", allocs)
	}
}
