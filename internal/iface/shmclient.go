package iface

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// ShmClientConfig configures a ring client.
type ShmClientConfig struct {
	// Timeout bounds the handshake wait (for the server to create and
	// initialise the file) and every subsequent wait for ring progress; a
	// serving process that dies without closing the region surfaces as
	// ErrShmStalled after this long. Default 5s.
	Timeout time.Duration
}

// ShmClient submits classification batches through the shared-memory ring.
// It is safe for concurrent use: a mutex serialises callers, preserving the
// request ring's single-producer discipline. The ClassifyBatchInto path
// performs zero heap allocations per call.
type ShmClient struct {
	mu      sync.Mutex
	m       shmMap
	f       *os.File
	timeout time.Duration
	chunk   int
	closed  bool

	// Scratch for single-packet Classify so it shares the zero-alloc batch
	// path (guarded by mu like everything else).
	onePkt [1]rule.Packet
	oneRes [1]engine.Result
}

// OpenShmClient attaches to the ring file at path, waiting up to the
// configured timeout for the serving process to create and initialise it.
func OpenShmClient(path string, cfg ShmClientConfig) (*ShmClient, error) {
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		c, retry, err := tryAttach(path)
		if err == nil {
			c.timeout = timeout
			return c, nil
		}
		if !retry || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tryAttach attempts one attachment. retry=true means the file is absent or
// not yet initialised — worth waiting for; false means it is structurally
// wrong and waiting will not help.
func tryAttach(path string) (*ShmClient, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, true, fmt.Errorf("iface: shm open: %w", err)
	}
	var hdr [20]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, true, fmt.Errorf("iface: shm header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[shmOffMagic:]) != shmMagic {
		f.Close()
		return nil, true, ErrShmHandshake
	}
	if binary.LittleEndian.Uint32(hdr[shmOffVersion:]) != shmVersion {
		f.Close()
		return nil, false, fmt.Errorf("%w: version %d", ErrShmHandshake, binary.LittleEndian.Uint32(hdr[shmOffVersion:]))
	}
	slots := binary.LittleEndian.Uint32(hdr[shmOffSlots:])
	if slots < 2 || slots > shmMaxSlots || slots&(slots-1) != 0 {
		f.Close()
		return nil, false, fmt.Errorf("%w: slot count %d", ErrShmHandshake, slots)
	}
	size := shmFileSize(int(slots))
	st, err := f.Stat()
	if err != nil || st.Size() < int64(size) {
		f.Close()
		return nil, true, ErrShmHandshake
	}
	data, err := mmapFile(f, size)
	if err != nil {
		f.Close()
		return nil, false, err
	}
	c := &ShmClient{f: f}
	c.m.init(data, slots)
	c.chunk = int(slots) / 2
	if c.m.state() != shmStateReady {
		c.detach()
		return nil, true, ErrShmHandshake
	}
	return c, false, nil
}

// detach unmaps and closes without touching the shared state (the server
// owns the lifecycle of the region).
func (c *ShmClient) detach() {
	munmapFile(c.m.data)
	c.f.Close()
}

// Slots returns the attached ring's capacity in descriptors.
func (c *ShmClient) Slots() int { return int(c.m.slots) }

// ClassifyBatchInto classifies ps[i] into out[i] through the ring. out must
// be at least as long as ps. Results carry the winning rule's ID and
// priority (the ranges stay on the serving side, as over wire protocol v2).
func (c *ShmClient) ClassifyBatchInto(ps []rule.Packet, out []engine.Result) error {
	if len(out) < len(ps) {
		return fmt.Errorf("iface: shm batch: out shorter than ps (%d < %d)", len(out), len(ps))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrShmClosed
	}
	for lo := 0; lo < len(ps); lo += c.chunk {
		hi := lo + c.chunk
		if hi > len(ps) {
			hi = len(ps)
		}
		if err := c.roundTrip(ps[lo:hi], out[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// ClassifyBatch is the allocating convenience wrapper.
func (c *ShmClient) ClassifyBatch(ps []rule.Packet) ([]engine.Result, error) {
	out := make([]engine.Result, len(ps))
	if err := c.ClassifyBatchInto(ps, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Classify classifies a single packet, returning the winning rule's ID and
// priority.
func (c *ShmClient) Classify(p rule.Packet) (id, priority int, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, 0, false, ErrShmClosed
	}
	c.onePkt[0] = p
	if err := c.roundTrip(c.onePkt[:], c.oneRes[:]); err != nil {
		return 0, 0, false, err
	}
	r := &c.oneRes[0]
	return r.Rule.ID, r.Rule.Priority, r.OK, nil
}

// roundTrip submits one span (at most half the ring) and collects its
// results. Caller holds mu. The span bound keeps the client's outstanding
// descriptors at or below one ring's worth, which is what guarantees the
// server can always publish results without checking the response ring for
// space.
func (c *ShmClient) roundTrip(ps []rule.Packet, out []engine.Result) error {
	m := &c.m
	n := uint64(len(ps))
	var b shmBackoff

	// Produce: wait for request-ring space, write the span, publish.
	tail := m.load(shmOffReqTail)
	deadline := time.Now().Add(c.timeout)
	for tail+n-m.load(shmOffReqHead) > m.slots {
		if m.state() == shmStateClosed {
			return ErrShmClosed
		}
		if time.Now().After(deadline) {
			return ErrShmStalled
		}
		b.wait()
	}
	for i := uint64(0); i < n; i++ {
		m.writeReq((tail+i)&m.mask, ps[i])
	}
	m.store(shmOffReqTail, tail+n)

	// Consume: collect exactly n results as the server publishes them.
	head := m.load(shmOffRespHead)
	consumed := uint64(0)
	b.reset()
	deadline = time.Now().Add(c.timeout)
	for consumed < n {
		avail := m.load(shmOffRespTail) - head
		if avail == 0 {
			if m.state() == shmStateClosed {
				return ErrShmClosed
			}
			if time.Now().After(deadline) {
				return ErrShmStalled
			}
			b.wait()
			continue
		}
		b.reset()
		deadline = time.Now().Add(c.timeout) // progress re-arms the watchdog
		if avail > n-consumed {
			avail = n - consumed
		}
		for i := uint64(0); i < avail; i++ {
			m.readResp((head+i)&m.mask, &out[consumed+uint64(i)])
		}
		head += avail
		m.store(shmOffRespHead, head)
		consumed += avail
	}
	return nil
}

// Close detaches from the region. The server side and its file are
// untouched — other clients (sequential; the ring is single-client) can
// attach afterwards.
func (c *ShmClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.detach()
	return nil
}
