package iface

import (
	"fmt"
	"os"
	"sync/atomic"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// ShmServerConfig configures a ring server.
type ShmServerConfig struct {
	// Slots is each ring's descriptor capacity, rounded up to a power of
	// two (default 4096). One slot is one packet; a client batch larger
	// than half the ring is submitted in ring-halves.
	Slots int
}

// shmServerBatch is how many queued requests the serving loop drains into
// one ClassifyBatch call.
const shmServerBatch = 1024

// ShmServerStats counts the server side's traffic.
type ShmServerStats struct {
	// Batches is the number of ClassifyBatch calls the loop issued.
	Batches uint64
	// Packets is the number of request descriptors served.
	Packets uint64
}

// ShmServer owns the shared file and drains the request ring into a batch
// classifier. NewShmServer creates (truncating) the file, maps it, and
// starts the serving loop; Close stops the loop, marks the region closed so
// a connected client errors out cleanly, and removes the file.
type ShmServer struct {
	m    shmMap
	f    *os.File
	path string
	cls  ShmBatcher

	stop    atomic.Bool
	done    chan struct{}
	batches atomic.Uint64
	packets atomic.Uint64
}

// NewShmServer creates the ring file at path and begins serving cls.
func NewShmServer(path string, cls ShmBatcher, cfg ShmServerConfig) (*ShmServer, error) {
	slots := cfg.Slots
	if slots <= 0 {
		slots = 4096
	}
	size := 2
	for size < slots {
		size <<= 1
	}
	if size > shmMaxSlots {
		return nil, fmt.Errorf("iface: shm ring slots %d exceed maximum %d", size, shmMaxSlots)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	total := shmFileSize(size)
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		return nil, err
	}
	data, err := mmapFile(f, total)
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &ShmServer{f: f, path: path, cls: cls, done: make(chan struct{})}
	s.m.init(data, uint32(size))
	// The truncate zeroed the region, so the cursors already read 0. Write
	// the handshake header, then flip the state to ready last — the state
	// store is the client's signal that everything before it is valid.
	s.m.store(shmOffMagic, shmMagic)
	atomic.StoreUint32(s.m.u32(shmOffVersion), shmVersion)
	atomic.StoreUint32(s.m.u32(shmOffSlots), uint32(size))
	s.m.setState(shmStateReady)
	go s.loop()
	return s, nil
}

// Slots returns the ring capacity in descriptors.
func (s *ShmServer) Slots() int { return int(s.m.slots) }

// Path returns the shared file's path.
func (s *ShmServer) Path() string { return s.path }

// Stats returns the server's traffic counters.
func (s *ShmServer) Stats() ShmServerStats {
	return ShmServerStats{Batches: s.batches.Load(), Packets: s.packets.Load()}
}

// loop is the serving goroutine: drain a span of queued requests, release
// their slots, classify the span in one batch call, publish the results.
// Request slots are released *before* classification so the client can
// refill them while the batch is in flight — the response ring's capacity
// equals the request ring's, and the client never has more than one ring of
// packets outstanding, so the response ring cannot overflow.
func (s *ShmServer) loop() {
	defer close(s.done)
	scratchP := make([]rule.Packet, shmServerBatch)
	scratchR := make([]engine.Result, shmServerBatch)
	var b shmBackoff
	for !s.stop.Load() {
		head := s.m.load(shmOffReqHead)
		tail := s.m.load(shmOffReqTail)
		n := int(tail - head)
		if n == 0 {
			b.wait()
			continue
		}
		b.reset()
		if n > shmServerBatch {
			n = shmServerBatch
		}
		for i := 0; i < n; i++ {
			scratchP[i] = s.m.readReq((head + uint64(i)) & s.m.mask)
		}
		s.m.store(shmOffReqHead, head+uint64(n))
		s.cls.ClassifyBatch(scratchP[:n], scratchR[:n])
		respTail := s.m.load(shmOffRespTail)
		for i := 0; i < n; i++ {
			s.m.writeResp((respTail+uint64(i))&s.m.mask, &scratchR[i])
		}
		s.m.store(shmOffRespTail, respTail+uint64(n))
		s.batches.Add(1)
		s.packets.Add(uint64(n))
	}
}

// Close stops the serving loop, marks the region closed (a blocked client
// returns ErrShmClosed rather than stalling) and removes the ring file.
func (s *ShmServer) Close() error {
	if s.stop.Swap(true) {
		return nil
	}
	<-s.done
	s.m.setState(shmStateClosed)
	err := munmapFile(s.m.data)
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if rerr := os.Remove(s.path); err == nil && !os.IsNotExist(rerr) {
		err = rerr
	}
	return err
}
