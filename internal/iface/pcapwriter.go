package iface

import (
	"bufio"
	"encoding/binary"
	"io"
	"time"

	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// PcapWriter writes a classic pcap stream (little-endian, microsecond
// timestamps, Ethernet link type) for capture-to-fixture: anything this
// package ingests — or any synthetic trace — can be persisted as a file
// every pcap tool opens. The writer reuses one frame buffer, so the
// steady-state WritePacket path does not allocate.
type PcapWriter struct {
	bw *bufio.Writer
	// scratch holds one serialized frame: Ethernet header + IPv4 + the
	// longest transport header.
	scratch [14 + 60 + 20]byte
	recHdr  [pcapRecordHeaderLen]byte
}

// NewPcapWriter writes the pcap global header to w and returns the writer.
// Call Flush when done.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	pw := &PcapWriter{bw: bufio.NewWriter(w)}
	var hdr [pcapGlobalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicMicroLE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)       // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4)       // version minor
	binary.LittleEndian.PutUint32(hdr[16:20], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := pw.bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return pw, nil
}

// writeRecord writes one record header plus frame bytes.
func (w *PcapWriter) writeRecord(tsNanos uint64, frame []byte) error {
	binary.LittleEndian.PutUint32(w.recHdr[0:4], uint32(tsNanos/uint64(time.Second)))
	binary.LittleEndian.PutUint32(w.recHdr[4:8], uint32(tsNanos%uint64(time.Second)/uint64(time.Microsecond)))
	binary.LittleEndian.PutUint32(w.recHdr[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(w.recHdr[12:16], uint32(len(frame)))
	if _, err := w.bw.Write(w.recHdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(frame)
	return err
}

// WriteFrame records a raw Ethernet frame as captured.
func (w *PcapWriter) WriteFrame(tsNanos uint64, frame []byte) error {
	return w.writeRecord(tsNanos, frame)
}

// WritePacket synthesises a minimal Ethernet/IPv4/transport frame realising
// the 5-tuple key and records it at the given capture timestamp.
func (w *PcapWriter) WritePacket(tsNanos uint64, key rule.Packet) error {
	frame := w.scratch[:]
	// Ethernet: zero MACs, IPv4 ethertype.
	for i := 0; i < 12; i++ {
		frame[i] = 0
	}
	binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv4)
	var transportLen int
	switch key.Proto {
	case packet.ProtoTCP:
		transportLen = 20
	case packet.ProtoUDP:
		transportLen = 8
	}
	ip := packet.IPv4Header{
		Version:  4,
		IHL:      5,
		Length:   uint16(20 + transportLen),
		TTL:      64,
		Protocol: key.Proto,
		SrcIP:    key.SrcIP,
		DstIP:    key.DstIP,
	}
	n, err := ip.SerializeTo(frame[14:])
	if err != nil {
		return err
	}
	off := 14 + n
	switch key.Proto {
	case packet.ProtoTCP:
		tcp := packet.TCPHeader{SrcPort: key.SrcPort, DstPort: key.DstPort, DataOffset: 5, Flags: 0x02, Window: 65535}
		n, err = tcp.SerializeTo(frame[off:])
	case packet.ProtoUDP:
		udp := packet.UDPHeader{SrcPort: key.SrcPort, DstPort: key.DstPort, Length: 8}
		n, err = udp.SerializeTo(frame[off:])
	default:
		n = 0
	}
	if err != nil {
		return err
	}
	return w.writeRecord(tsNanos, frame[:off+n])
}

// Flush flushes buffered records to the underlying writer.
func (w *PcapWriter) Flush() error { return w.bw.Flush() }

// TraceInterval is the synthetic inter-arrival gap WriteTracePcap stamps
// between consecutive packets, chosen small enough that recorded-rate
// replays of test fixtures finish quickly but large enough to be a real
// schedule for the pacing modes.
const TraceInterval = time.Microsecond

// WriteTracePcap exports a synthetic header trace as a pcap file: each
// entry becomes a minimal Ethernet/IPv4 frame, timestamped TraceInterval
// apart. This is how perflab and the tests fabricate "real traffic"
// fixtures from ClassBench traces without committing binaries.
func WriteTracePcap(w io.Writer, entries []packet.TraceEntry) error {
	pw, err := NewPcapWriter(w)
	if err != nil {
		return err
	}
	ts := uint64(time.Second) // start at t=1s; zero timestamps confuse some tools
	for _, e := range entries {
		if err := pw.WritePacket(ts, e.Key); err != nil {
			return err
		}
		ts += uint64(TraceInterval)
	}
	return pw.Flush()
}
