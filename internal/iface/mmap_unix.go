//go:build unix

package iface

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f shared and writable.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// munmapFile unmaps a mapping returned by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }
