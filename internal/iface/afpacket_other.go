//go:build !linux

package iface

import (
	"time"

	"neurocuts/internal/rule"
)

// AFPacketConfig configures a live capture (Linux only; present everywhere
// so callers compile unconditionally).
type AFPacketConfig struct {
	// PollTimeout bounds how long one empty socket read blocks.
	PollTimeout time.Duration
	// SnapLen is the per-frame read buffer size.
	SnapLen int
}

// AFPacketSource is the non-Linux stub of the live capture source; it can
// never be constructed.
type AFPacketSource struct{}

// OpenAFPacket fails with ErrAFPacketUnsupported on non-Linux platforms.
func OpenAFPacket(name string, cfg AFPacketConfig) (*AFPacketSource, error) {
	return nil, ErrAFPacketUnsupported
}

// ReadBatch implements Source; it is unreachable on this platform.
func (s *AFPacketSource) ReadBatch(ps []rule.Packet) (int, error) {
	return 0, ErrAFPacketUnsupported
}

// Stats returns zero counters.
func (s *AFPacketSource) Stats() SourceStats { return SourceStats{} }

// Close is a no-op.
func (s *AFPacketSource) Close() error { return nil }
