// Package iface ingests real packets into the classification engine.
//
// Everything upstream of this package produced synthetic ClassBench header
// traces; iface is the boundary where actual wire-format traffic enters the
// system. It provides one zero-allocation Source interface — ReadBatch fills
// a caller-owned span of decoded 5-tuple keys — and three implementations:
//
//   - PcapReader replays classic-pcap capture files (Ethernet, 802.1Q VLAN
//     and raw-IP link types), decoding IPv4/TCP/UDP headers into
//     classification keys, with replay pacing at the recorded inter-arrival
//     gaps, a rate multiplier of them, or flat out (see PcapConfig.Rate).
//     PcapWriter is the inverse: it captures classified traffic — or any
//     synthetic trace — into a pcap fixture other tools can open.
//
//   - AFPacketSource captures live frames from a Linux network interface
//     through an AF_PACKET raw socket (//go:build linux; other platforms
//     get an error-returning stub). Capturing requires CAP_NET_RAW.
//
//   - The shared-memory ring transport (ShmServer, ShmClient) lets a
//     co-located client submit batches and read results through a
//     file-backed mmap region instead of TCP: a handshake page, then two
//     single-producer/single-consumer descriptor rings with cache-line-
//     padded cursors, following the dataplane's ring discipline. The SDK
//     exposes it as classifier.WithSharedMemory.
//
// All three steady-state read paths perform zero heap allocations per
// operation; the alloc tests in this package pin that the same way the
// engine and dataplane gates do.
package iface

import (
	"errors"
	"fmt"

	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// Source is a stream of decoded packets ready for classification.
//
// ReadBatch fills ps with up to len(ps) packets and returns how many it
// wrote. It returns io.EOF once the source is exhausted (finite sources
// only); live-capture sources instead return (0, nil) when a poll interval
// elapsed without traffic, so callers can check for shutdown between
// batches. A Source is not safe for concurrent ReadBatch calls.
type Source interface {
	ReadBatch(ps []rule.Packet) (int, error)
	Close() error
}

// SourceStats is the common counter set every Source tracks.
type SourceStats struct {
	// Packets is the number of keys handed to ReadBatch callers.
	Packets uint64
	// Skipped counts frames the source read but could not turn into a
	// classification key: non-IPv4 ethertypes (ARP, IPv6, LLDP, ...),
	// frames truncated below their header lengths, unknown link types.
	Skipped uint64
}

// Errors shared by the ingestion sources.
var (
	// ErrNotPcap is returned when the stream does not start with a classic
	// pcap global header.
	ErrNotPcap = errors.New("iface: not a pcap file (bad magic)")
	// ErrPcapVersion is returned for pcap major versions other than 2.
	ErrPcapVersion = errors.New("iface: unsupported pcap version")
	// ErrLinkType is returned for capture link types this package cannot
	// decode (anything but Ethernet and raw IP).
	ErrLinkType = errors.New("iface: unsupported pcap link type")
	// ErrShmUnsupported is returned by the shared-memory transport on
	// platforms without mmap support.
	ErrShmUnsupported = errors.New("iface: shared-memory transport unsupported on this platform")
	// ErrShmClosed is returned by shm operations after the peer shut the
	// ring down.
	ErrShmClosed = errors.New("iface: shared-memory ring closed by peer")
	// ErrAFPacketUnsupported is returned by OpenAFPacket on non-Linux
	// platforms.
	ErrAFPacketUnsupported = errors.New("iface: AF_PACKET capture requires linux")
)

// CanonicalKey returns the wire-expressible form of a classification key:
// protocols without port fields (anything but TCP and UDP) carry zero ports
// on the wire, so their decoded keys always read 0 there. A synthetic trace
// entry round-trips through pcap exactly iff it equals its canonical form.
func CanonicalKey(p rule.Packet) rule.Packet {
	if p.Proto != packet.ProtoTCP && p.Proto != packet.ProtoUDP {
		p.SrcPort, p.DstPort = 0, 0
	}
	return p
}

// TornTailError reports a pcap stream that ends mid-record — the classic
// torn tail of a capture interrupted partway through a write. It names the
// byte offset where the truncated record starts so the file can be repaired
// by truncating to that offset, mirroring the update journal's torn-tail
// handling.
type TornTailError struct {
	// Offset is the byte offset of the first truncated record.
	Offset int64
	// What describes which part of the record was cut short.
	What string
}

// Error implements the error interface.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("iface: torn pcap tail: %s truncated at byte offset %d", e.What, e.Offset)
}
