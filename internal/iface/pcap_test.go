package iface

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// testTrace generates a rule-biased header trace for a small acl1
// classifier.
func testTrace(t testing.TB, n int) []packet.TraceEntry {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 128, 1)
	return classbench.GenerateTrace(set, n, 7)
}

// tracePcap renders a trace as pcap bytes.
func tracePcap(t testing.TB, entries []packet.TraceEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTracePcap(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAll drains a source in batches of batch.
func readAll(t testing.TB, src Source, batch int) []rule.Packet {
	t.Helper()
	var out []rule.Packet
	ps := make([]rule.Packet, batch)
	for {
		n, err := src.ReadBatch(ps)
		out = append(out, ps[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		if n == 0 {
			t.Fatal("ReadBatch returned 0 packets with no error")
		}
	}
}

// TestPcapRoundTrip writes a synthetic trace as pcap and reads it back:
// every 5-tuple must survive identically (in canonical wire form — the
// wire cannot carry ports for port-less protocols), in order. This is the
// property that makes generated pcap fixtures equivalent to the text
// traces they came from.
func TestPcapRoundTrip(t *testing.T) {
	entries := testTrace(t, 1000)
	for i := range entries {
		entries[i].Key = CanonicalKey(entries[i].Key)
	}
	data := tracePcap(t, entries)
	for _, batch := range []int{1, 7, 64, 1024} {
		r, err := NewPcapReader(bytes.NewReader(data), PcapConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got := readAll(t, r, batch)
		if len(got) != len(entries) {
			t.Fatalf("batch %d: read %d packets, want %d", batch, len(got), len(entries))
		}
		for i := range got {
			if got[i] != entries[i].Key {
				t.Fatalf("batch %d: packet %d = %+v, want %+v", batch, i, got[i], entries[i].Key)
			}
		}
		if st := r.Stats(); st.Packets != uint64(len(entries)) || st.Skipped != 0 {
			t.Fatalf("batch %d: stats %+v, want %d packets 0 skipped", batch, st, len(entries))
		}
	}
}

// TestPcapICMPPorts pins the convention for port-less transports: an ICMP
// packet decodes with zero ports, matching the rest of the stack.
func TestPcapICMPPorts(t *testing.T) {
	entries := []packet.TraceEntry{{Key: rule.Packet{SrcIP: 0x0a000001, DstIP: 0x0a000002, Proto: packet.ProtoICMP}}}
	r, err := NewPcapReader(bytes.NewReader(tracePcap(t, entries)), PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r, 4)
	if len(got) != 1 || got[0] != entries[0].Key {
		t.Fatalf("got %+v, want %+v", got, entries[0].Key)
	}
}

// buildFrame assembles an Ethernet frame with optional VLAN tags around a
// serialized IPv4 packet.
func buildFrame(t testing.TB, key rule.Packet, tags ...uint16) []byte {
	t.Helper()
	ip, err := packet.Serialize(key)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: 12 MAC bytes, then each tag's TPID+TCI, then the payload
	// ethertype, then the IP packet — exactly what ethPayload walks.
	frame := make([]byte, 0, 14+4*len(tags)+len(ip))
	frame = append(frame, make([]byte, 12)...) // MACs
	for _, tpid := range tags {
		var tag [4]byte
		binary.BigEndian.PutUint16(tag[0:2], tpid)
		binary.BigEndian.PutUint16(tag[2:4], 0x0042) // TCI: VLAN 66
		frame = append(frame, tag[:]...)
	}
	var et [2]byte
	binary.BigEndian.PutUint16(et[:], etherTypeIPv4)
	frame = append(frame, et[:]...)
	frame = append(frame, ip...)
	return frame
}

// TestPcapVLAN decodes single- and double-tagged frames.
func TestPcapVLAN(t *testing.T) {
	key := rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP}
	for _, tags := range [][]uint16{
		{etherTypeVLAN},
		{etherTypeQinQ, etherTypeVLAN},
		{etherTypeQinQ2, etherTypeVLAN},
	} {
		var buf bytes.Buffer
		pw, err := NewPcapWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := pw.WriteFrame(uint64(time.Second), buildFrame(t, key, tags...)); err != nil {
			t.Fatal(err)
		}
		if err := pw.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewPcapReader(bytes.NewReader(buf.Bytes()), PcapConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got := readAll(t, r, 4)
		if len(got) != 1 || got[0] != key {
			t.Fatalf("tags %v: got %+v, want %v", tags, got, key)
		}
	}
}

// TestPcapSkipsNonIPv4 pins that ARP and IPv6 frames are counted, not
// fatal.
func TestPcapSkipsNonIPv4(t *testing.T) {
	key := rule.Packet{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6, Proto: packet.ProtoTCP}
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	arp := make([]byte, 42)
	binary.BigEndian.PutUint16(arp[12:14], 0x0806)
	ipv6 := make([]byte, 60)
	binary.BigEndian.PutUint16(ipv6[12:14], 0x86DD)
	runt := []byte{1, 2, 3}
	for _, f := range [][]byte{arp, ipv6, runt} {
		if err := pw.WriteFrame(uint64(time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.WriteFrame(2*uint64(time.Second), buildFrame(t, key)); err != nil {
		t.Fatal(err)
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()), PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r, 4)
	if len(got) != 1 || got[0] != key {
		t.Fatalf("got %+v, want just %v", got, key)
	}
	if st := r.Stats(); st.Skipped != 3 {
		t.Fatalf("skipped = %d, want 3", st.Skipped)
	}
}

// TestPcapBigEndianAndNano reads hand-built big-endian and nanosecond
// variants of the format.
func TestPcapBigEndianAndNano(t *testing.T) {
	key := rule.Packet{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 80, DstPort: 443, Proto: packet.ProtoTCP}
	frame := buildFrame(t, key)
	cases := []struct {
		name  string
		magic uint32
		order binary.ByteOrder
		nanos bool
	}{
		{"big-endian micro", pcapMagicMicroLE, binary.BigEndian, false},
		{"little-endian nano", pcapMagicNanoLE, binary.LittleEndian, true},
		{"big-endian nano", pcapMagicNanoLE, binary.BigEndian, true},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		hdr := make([]byte, pcapGlobalHeaderLen)
		tc.order.PutUint32(hdr[0:4], tc.magic)
		tc.order.PutUint16(hdr[4:6], 2)
		tc.order.PutUint16(hdr[6:8], 4)
		tc.order.PutUint32(hdr[16:20], 65535)
		tc.order.PutUint32(hdr[20:24], LinkTypeEthernet)
		buf.Write(hdr)
		rec := make([]byte, pcapRecordHeaderLen)
		tc.order.PutUint32(rec[0:4], 1)
		tc.order.PutUint32(rec[4:8], 42)
		tc.order.PutUint32(rec[8:12], uint32(len(frame)))
		tc.order.PutUint32(rec[12:16], uint32(len(frame)))
		buf.Write(rec)
		buf.Write(frame)

		r, err := NewPcapReader(bytes.NewReader(buf.Bytes()), PcapConfig{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if r.nanos != tc.nanos {
			t.Fatalf("%s: nanos = %v, want %v", tc.name, r.nanos, tc.nanos)
		}
		got := readAll(t, r, 4)
		if len(got) != 1 || got[0] != key {
			t.Fatalf("%s: got %+v, want %v", tc.name, got, key)
		}
	}
}

// TestPcapRawIPLinkType reads a DLT_RAW capture (IP with no link header).
func TestPcapRawIPLinkType(t *testing.T) {
	key := rule.Packet{SrcIP: 11, DstIP: 22, SrcPort: 33, DstPort: 44, Proto: packet.ProtoUDP}
	ip, err := packet.Serialize(key)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hdr := make([]byte, pcapGlobalHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicMicroLE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeRawIP)
	buf.Write(hdr)
	rec := make([]byte, pcapRecordHeaderLen)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(ip)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(ip)))
	buf.Write(rec)
	buf.Write(ip)

	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()), PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r, 4)
	if len(got) != 1 || got[0] != key {
		t.Fatalf("got %+v, want %v", got, key)
	}
}

// TestPcapRejectsBadHeaders pins the fast failures: wrong magic, wrong
// version, unsupported link type, oversized record.
func TestPcapRejectsBadHeaders(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader([]byte("not a pcap file at all....")), PcapConfig{}); !errors.Is(err, ErrNotPcap) {
		t.Fatalf("bad magic: err = %v, want ErrNotPcap", err)
	}
	if _, err := NewPcapReader(bytes.NewReader(nil), PcapConfig{}); !errors.Is(err, ErrNotPcap) {
		t.Fatalf("empty: err = %v, want ErrNotPcap", err)
	}

	mk := func(version uint16, link uint32) []byte {
		hdr := make([]byte, pcapGlobalHeaderLen)
		binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicMicroLE)
		binary.LittleEndian.PutUint16(hdr[4:6], version)
		binary.LittleEndian.PutUint32(hdr[20:24], link)
		return hdr
	}
	if _, err := NewPcapReader(bytes.NewReader(mk(3, LinkTypeEthernet)), PcapConfig{}); !errors.Is(err, ErrPcapVersion) {
		t.Fatalf("version: err = %v, want ErrPcapVersion", err)
	}
	if _, err := NewPcapReader(bytes.NewReader(mk(2, 113)), PcapConfig{}); !errors.Is(err, ErrLinkType) {
		t.Fatalf("linktype: err = %v, want ErrLinkType", err)
	}

	// A record claiming more bytes than MaxPacketBytes is corruption, not
	// an allocation request.
	var buf bytes.Buffer
	buf.Write(mk(2, LinkTypeEthernet))
	rec := make([]byte, pcapRecordHeaderLen)
	binary.LittleEndian.PutUint32(rec[8:12], 1<<30)
	buf.Write(rec)
	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()), PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var ps [4]rule.Packet
	if _, err := r.ReadBatch(ps[:]); !errors.Is(err, ErrPacketTooLarge) {
		t.Fatalf("oversized record: err = %v, want ErrPacketTooLarge", err)
	}
}

// TestPcapTornTail is the journal-style torn-tail regression: a pcap whose
// final record is cut off — mid record header or mid body — must produce a
// clean *TornTailError naming the truncated record's byte offset, deliver
// every complete packet before it, and never panic or loop.
func TestPcapTornTail(t *testing.T) {
	entries := testTrace(t, 10)
	data := tracePcap(t, entries)

	// Find the offset where the last record starts by replaying offsets:
	// global header, then 16 + frame length per record. Frames here are
	// TCP (54B), UDP (42B) or ICMP (34B); recompute from the data itself.
	offsets := recordOffsets(t, data)
	if len(offsets) != len(entries) {
		t.Fatalf("found %d records, want %d", len(offsets), len(entries))
	}
	last := offsets[len(offsets)-1]

	cases := []struct {
		name string
		cut  int64 // bytes kept
	}{
		{"mid record header", last + 7},
		{"mid body", last + pcapRecordHeaderLen + 5},
		{"empty body", last + pcapRecordHeaderLen},
	}
	for _, tc := range cases {
		r, err := NewPcapReader(bytes.NewReader(data[:tc.cut]), PcapConfig{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var got []rule.Packet
		ps := make([]rule.Packet, 3)
		var readErr error
		for i := 0; i < 100; i++ {
			n, err := r.ReadBatch(ps)
			got = append(got, ps[:n]...)
			if err != nil {
				readErr = err
				break
			}
		}
		var torn *TornTailError
		if !errors.As(readErr, &torn) {
			t.Fatalf("%s: err = %v, want *TornTailError", tc.name, readErr)
		}
		if torn.Offset != last {
			t.Fatalf("%s: torn offset = %d, want %d", tc.name, torn.Offset, last)
		}
		if len(got) != len(entries)-1 {
			t.Fatalf("%s: delivered %d packets before the tear, want %d", tc.name, len(got), len(entries)-1)
		}
		for i := range got {
			if got[i] != entries[i].Key {
				t.Fatalf("%s: packet %d mismatch", tc.name, i)
			}
		}
	}
}

// recordOffsets walks a well-formed pcap's record boundaries.
func recordOffsets(t testing.TB, data []byte) []int64 {
	t.Helper()
	var offs []int64
	off := int64(pcapGlobalHeaderLen)
	for off < int64(len(data)) {
		offs = append(offs, off)
		if int64(len(data)) < off+pcapRecordHeaderLen {
			t.Fatal("fixture itself is torn")
		}
		incl := binary.LittleEndian.Uint32(data[off+8 : off+12])
		off += pcapRecordHeaderLen + int64(incl)
	}
	return offs
}

// TestPcapPacingRecorded pins the pacing modes against the wall clock:
// recorded-rate replay of gapped fixtures takes at least the recorded
// span, max-rate replay does not.
func TestPcapPacingRecorded(t *testing.T) {
	// 5 packets, 30ms apart: the recorded span is 120ms.
	key := rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP}
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := pw.WritePacket(uint64(time.Second)+uint64(i)*uint64(30*time.Millisecond), key); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	elapsed := func(rate float64) time.Duration {
		r, err := NewPcapReader(bytes.NewReader(data), PcapConfig{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		readAll(t, r, 64)
		return time.Since(start)
	}

	if d := elapsed(1); d < 100*time.Millisecond {
		t.Fatalf("recorded-rate replay finished in %v, want >= ~120ms", d)
	}
	if d := elapsed(0); d > 50*time.Millisecond {
		t.Fatalf("max-rate replay took %v, want effectively instant", d)
	}
	// 4x the recorded rate quarters the gaps: >= ~30ms, well under 120ms.
	if d := elapsed(4); d < 25*time.Millisecond || d > 110*time.Millisecond {
		t.Fatalf("4x-rate replay took %v, want ~30ms", d)
	}
}

// TestPcapPacingBatchBoundary pins that pacing never sleeps with delivered
// packets in hand: when the next packet is not yet due, ReadBatch returns
// the partial batch immediately and parks the decoded packet for the next
// call.
func TestPcapPacingBatchBoundary(t *testing.T) {
	key := rule.Packet{SrcIP: 1, DstIP: 2, Proto: packet.ProtoICMP}
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := pw.WritePacket(uint64(time.Second)+uint64(i)*uint64(200*time.Millisecond), key); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()), PcapConfig{Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]rule.Packet, 8)
	start := time.Now()
	n, err := r.ReadBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); n != 1 || d > 150*time.Millisecond {
		t.Fatalf("first batch: n=%d in %v, want 1 packet immediately", n, d)
	}
}
