package iface

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// The shared-memory transport is one file-backed mmap region shared by a
// serving process and a co-located client, so a batch of lookups costs two
// ring traversals instead of a TCP round trip. The region holds a handshake
// header, four cache-line-separated ring cursors and two descriptor rings:
//
//	offset 0    header: magic, version, slot count, state
//	offset 64   reqTail  — client produces request descriptors
//	offset 128  reqHead  — server consumes them
//	offset 192  respTail — server produces result descriptors
//	offset 256  respHead — client consumes them
//	offset 384  request slots  (16 B each: the 5-tuple key)
//	     + 16·N response slots (16 B each: rule ID, priority, match flag)
//
// Both rings follow the dataplane's SPSC discipline (internal/dataplane
// ring.go): exactly one producer and one consumer per ring, so two atomic
// cursors fully synchronise each — the producer's tail store publishes the
// slots written before it, the consumer's head store releases them. Each
// cursor sits alone on its cache line, here so the two *processes* never
// false-share. The client serialises its callers with a mutex (it is the
// single producer of the request ring); the server runs one loop goroutine
// (single consumer/producer on its sides).
const (
	shmMagic   uint64 = 0x0031524D4853434E // "NCSHMR1\0", little-endian
	shmVersion uint32 = 1

	shmOffMagic    = 0
	shmOffVersion  = 8
	shmOffSlots    = 12
	shmOffState    = 16
	shmOffReqTail  = 64
	shmOffReqHead  = 128
	shmOffRespTail = 192
	shmOffRespHead = 256
	shmDataOff     = 384

	shmReqSlotBytes  = 16
	shmRespSlotBytes = 16

	shmStateInit   uint32 = 0
	shmStateReady  uint32 = 1
	shmStateClosed uint32 = 2

	// shmMaxSlots bounds the ring size a client will accept from a
	// handshake header, so a corrupt file cannot demand an absurd mapping.
	shmMaxSlots = 1 << 20
)

// ErrShmHandshake is returned when the shared file is not a valid ring
// region (bad magic, version, slot count or size).
var ErrShmHandshake = errors.New("iface: invalid shared-memory ring file")

// ErrShmStalled is returned when the peer stops making progress for longer
// than the configured timeout (e.g. the serving process was killed without
// closing the ring).
var ErrShmStalled = errors.New("iface: shared-memory peer not responding")

// ShmBatcher is the classification surface the ring server drains into:
// engine.Engine and dataplane.Dataplane both satisfy it.
type ShmBatcher interface {
	ClassifyBatch(ps []rule.Packet, out []engine.Result)
}

// shmFileSize returns the region size for a slot count.
func shmFileSize(slots int) int {
	return shmDataOff + slots*(shmReqSlotBytes+shmRespSlotBytes)
}

// shmMap wraps the mapped region with typed accessors. All cursor loads
// and stores go through sync/atomic on 8-byte-aligned words inside the
// mapping (the mapping is page-aligned and every cursor offset is a
// multiple of 64).
type shmMap struct {
	data    []byte
	slots   uint64
	mask    uint64
	respOff int
}

func (m *shmMap) init(data []byte, slots uint32) {
	m.data = data
	m.slots = uint64(slots)
	m.mask = uint64(slots) - 1
	m.respOff = shmDataOff + int(slots)*shmReqSlotBytes
}

func (m *shmMap) u64(off int) *uint64 { return (*uint64)(unsafe.Pointer(&m.data[off])) }
func (m *shmMap) u32(off int) *uint32 { return (*uint32)(unsafe.Pointer(&m.data[off])) }

func (m *shmMap) state() uint32           { return atomic.LoadUint32(m.u32(shmOffState)) }
func (m *shmMap) setState(s uint32)       { atomic.StoreUint32(m.u32(shmOffState), s) }
func (m *shmMap) load(off int) uint64     { return atomic.LoadUint64(m.u64(off)) }
func (m *shmMap) store(off int, v uint64) { atomic.StoreUint64(m.u64(off), v) }

// writeReq serialises one request key into slot i.
func (m *shmMap) writeReq(i uint64, p rule.Packet) {
	b := m.data[shmDataOff+int(i)*shmReqSlotBytes:]
	binary.LittleEndian.PutUint32(b[0:4], p.SrcIP)
	binary.LittleEndian.PutUint32(b[4:8], p.DstIP)
	binary.LittleEndian.PutUint16(b[8:10], p.SrcPort)
	binary.LittleEndian.PutUint16(b[10:12], p.DstPort)
	b[12] = p.Proto
}

// readReq deserialises slot i into a request key.
func (m *shmMap) readReq(i uint64) rule.Packet {
	b := m.data[shmDataOff+int(i)*shmReqSlotBytes:]
	return rule.Packet{
		SrcIP:   binary.LittleEndian.Uint32(b[0:4]),
		DstIP:   binary.LittleEndian.Uint32(b[4:8]),
		SrcPort: binary.LittleEndian.Uint16(b[8:10]),
		DstPort: binary.LittleEndian.Uint16(b[10:12]),
		Proto:   b[12],
	}
}

// writeResp serialises one classification result into response slot i. Only
// the winning rule's identity crosses the ring — ID and priority, exactly
// what wire protocol v2 carries — not its ranges.
func (m *shmMap) writeResp(i uint64, r *engine.Result) {
	b := m.data[m.respOff+int(i)*shmRespSlotBytes:]
	var flags uint32
	if r.OK {
		flags = 1
	}
	binary.LittleEndian.PutUint64(b[0:8], uint64(int64(r.Rule.ID)))
	binary.LittleEndian.PutUint32(b[8:12], uint32(int32(r.Rule.Priority)))
	binary.LittleEndian.PutUint32(b[12:16], flags)
}

// readResp deserialises response slot i. The reconstructed Result carries
// the matched rule's ID and Priority only; the ranges live on the serving
// side.
func (m *shmMap) readResp(i uint64, out *engine.Result) {
	b := m.data[m.respOff+int(i)*shmRespSlotBytes:]
	id := int64(binary.LittleEndian.Uint64(b[0:8]))
	prio := int32(binary.LittleEndian.Uint32(b[8:12]))
	ok := binary.LittleEndian.Uint32(b[12:16])&1 != 0
	*out = engine.Result{OK: ok}
	if ok {
		out.Rule.ID = int(id)
		out.Rule.Priority = int(prio)
	}
}

// shmBackoff is the wait strategy both sides use on an empty or full ring:
// yield the processor for a while, then sleep in short steps. Busy-waiting
// forever would pin a core per idle ring; sleeping immediately would add
// milliseconds to every batch.
type shmBackoff struct{ spins int }

func (b *shmBackoff) wait() {
	b.spins++
	if b.spins < 256 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}

func (b *shmBackoff) reset() { b.spins = 0 }
