package iface_test

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/iface"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

// diffFixture builds a classifier rule set and a pcap rendering of a
// rule-biased trace against it.
func diffFixture(t testing.TB, packets int) (*rule.Set, []byte) {
	t.Helper()
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 256, 3)
	entries := classbench.GenerateTrace(set, packets, 11)
	var buf bytes.Buffer
	if err := iface.WriteTracePcap(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return set, buf.Bytes()
}

// TestDifferentialPcapVsDirect is the ingestion correctness gate: packets
// decoded from a pcap replay must classify byte-identically to the same
// 5-tuples fed to the engine directly, across at least two backends and at
// least 12k packets. Any divergence means the decode path changed a key.
func TestDifferentialPcapVsDirect(t *testing.T) {
	const packets = 12_500
	set, data := diffFixture(t, packets)

	// Decode once; the decoded keys are the ground truth both sides see.
	src, err := iface.NewPcapReader(bytes.NewReader(data), iface.PcapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []rule.Packet
	batch := make([]rule.Packet, 512)
	for {
		n, err := src.ReadBatch(batch)
		decoded = append(decoded, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(decoded) != packets {
		t.Fatalf("decoded %d packets, want %d", len(decoded), packets)
	}

	for _, backend := range []string{"hicuts", "tss"} {
		eng, err := engine.NewEngine(backend, set, engine.Options{Shards: 1})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		// Direct path: the decoded keys straight into the engine.
		want := make([]engine.Result, len(decoded))
		eng.ClassifyBatch(decoded, want)

		// Replay path: a fresh reader feeding the engine batch by batch,
		// exactly as classifyd's replay loop does.
		src, err := iface.NewPcapReader(bytes.NewReader(data), iface.PcapConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]engine.Result, 512)
		idx := 0
		for {
			n, err := src.ReadBatch(batch)
			if n > 0 {
				eng.ClassifyBatch(batch[:n], got[:n])
				for i := 0; i < n; i++ {
					if got[i] != want[idx+i] {
						t.Fatalf("%s: packet %d: replay %+v != direct %+v (key %v)",
							backend, idx+i, got[i], want[idx+i], batch[i])
					}
				}
				idx += n
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if idx != packets {
			t.Fatalf("%s: replay classified %d packets, want %d", backend, idx, packets)
		}
		eng.Close()
	}
}

// TestDifferentialShmVsTCP pins the shared-memory transport against wire
// protocol v2 over TCP: same engine, same packets, the ring and the socket
// must return identical (id, priority, ok) triples.
func TestDifferentialShmVsTCP(t *testing.T) {
	fam, err := classbench.FamilyByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 256, 5)
	entries := classbench.GenerateTrace(set, 4096, 13)
	ps := make([]rule.Packet, len(entries))
	for i, e := range entries {
		ps[i] = e.Key
	}

	eng, err := engine.NewEngine("tss", set, engine.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// TCP side: a real server on loopback, protocol v2 client.
	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tcp, err := server.DialV2(context.Background(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	// Shm side: a ring over the same engine.
	ring, err := iface.NewShmServer(filepath.Join(t.TempDir(), "ring"), eng, iface.ShmServerConfig{Slots: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ring.Close()
	shm, err := iface.OpenShmClient(ring.Path(), iface.ShmClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer shm.Close()

	viaTCP, err := tcp.ClassifyBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	viaShm, err := shm.ClassifyBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaTCP) != len(ps) || len(viaShm) != len(ps) {
		t.Fatalf("result lengths: tcp=%d shm=%d, want %d", len(viaTCP), len(viaShm), len(ps))
	}
	for i := range ps {
		a, b := viaTCP[i], viaShm[i]
		if a.OK != b.OK || a.Rule.ID != b.Rule.ID || a.Rule.Priority != b.Rule.Priority {
			t.Fatalf("packet %d (%v): tcp id=%d prio=%d ok=%v, shm id=%d prio=%d ok=%v",
				i, ps[i], a.Rule.ID, a.Rule.Priority, a.OK, b.Rule.ID, b.Rule.Priority, b.OK)
		}
	}
}
