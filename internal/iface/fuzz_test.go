package iface

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// FuzzPcapRead throws arbitrary bytes at the pcap parser. The invariants:
// never panic, never loop forever (every iteration must either deliver a
// packet, return an error, or hit EOF), and a reader that accepts a header
// must keep its stream offset monotonically non-decreasing.
func FuzzPcapRead(f *testing.F) {
	// Seed corpus: a valid capture, its truncations at awkward offsets, a
	// big-endian nano variant, VLAN tags, and plain garbage.
	var valid bytes.Buffer
	pw, err := NewPcapWriter(&valid)
	if err != nil {
		f.Fatal(err)
	}
	keys := []rule.Packet{
		{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP},
		{SrcIP: 0xc0a80101, DstIP: 0xc0a80102, SrcPort: 53, DstPort: 5353, Proto: packet.ProtoUDP},
		{SrcIP: 1, DstIP: 2, Proto: packet.ProtoICMP},
	}
	for i, k := range keys {
		if err := pw.WritePacket(uint64(time.Second)+uint64(i)*uint64(time.Millisecond), k); err != nil {
			f.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		f.Fatal(err)
	}
	vb := valid.Bytes()
	f.Add(vb)
	f.Add(vb[:len(vb)-3])                   // torn record body
	f.Add(vb[:pcapGlobalHeaderLen+7])       // torn record header
	f.Add(vb[:pcapGlobalHeaderLen])         // header only
	f.Add(vb[:5])                           // torn global header
	f.Add([]byte{})                         // empty
	f.Add([]byte("garbage, not a capture")) // bad magic

	// Big-endian nanosecond header with an absurd claimed record length.
	be := make([]byte, pcapGlobalHeaderLen+pcapRecordHeaderLen)
	binary.BigEndian.PutUint32(be[0:4], pcapMagicNanoLE)
	binary.BigEndian.PutUint16(be[4:6], 2)
	binary.BigEndian.PutUint32(be[20:24], LinkTypeEthernet)
	binary.BigEndian.PutUint32(be[32:36], 0xffffffff)
	f.Add(be)

	// Zero-length record followed by a stacked-VLAN frame.
	var vlan bytes.Buffer
	pw2, err := NewPcapWriter(&vlan)
	if err != nil {
		f.Fatal(err)
	}
	if err := pw2.WriteFrame(uint64(time.Second), nil); err != nil {
		f.Fatal(err)
	}
	ip, err := packet.Serialize(keys[0])
	if err != nil {
		f.Fatal(err)
	}
	frame := make([]byte, 12, 26+len(ip))
	for _, tpid := range []uint16{etherTypeQinQ, etherTypeVLAN} {
		frame = binary.BigEndian.AppendUint16(frame, tpid)
		frame = binary.BigEndian.AppendUint16(frame, 7)
	}
	frame = binary.BigEndian.AppendUint16(frame, etherTypeIPv4)
	frame = append(frame, ip...)
	if err := pw2.WriteFrame(2*uint64(time.Second), frame); err != nil {
		f.Fatal(err)
	}
	if err := pw2.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(vlan.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Rate must stay 0: fuzz inputs contain arbitrary timestamps and a
		// paced reader would faithfully sleep out their gaps.
		r, err := NewPcapReader(bytes.NewReader(data), PcapConfig{})
		if err != nil {
			return
		}
		ps := make([]rule.Packet, 16)
		prevOff := r.Offset()
		for i := 0; ; i++ {
			if i > len(data)+16 {
				t.Fatalf("ReadBatch made no progress after %d iterations (len(data)=%d)", i, len(data))
			}
			n, err := r.ReadBatch(ps)
			if off := r.Offset(); off < prevOff {
				t.Fatalf("stream offset went backwards: %d -> %d", prevOff, off)
			} else {
				prevOff = off
			}
			if err == io.EOF {
				return
			}
			if err != nil {
				return // clean failure is fine; panics and hangs are not
			}
			if n == 0 {
				t.Fatal("ReadBatch returned (0, nil) on a finite stream")
			}
		}
	})
}
