//go:build !amd64

package compiled

import "unsafe"

// prefetchT0 is a no-op where no prefetch instruction is exposed; grouped
// traversal still overlaps the lanes' demand misses, which is most of the
// batch win.
func prefetchT0(p unsafe.Pointer) { _ = p }
