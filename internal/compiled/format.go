package compiled

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"neurocuts/internal/rule"
)

// SchemaVersion identifies the artifact binary schema. Bump it on any
// incompatible layout change; Load refuses artifacts written under a
// different version rather than guessing. The committed
// ARTIFACT_SCHEMA_VERSION file pins this value in CI so a bump is always an
// explicit, reviewed change.
const SchemaVersion = 1

// Magic opens every artifact file ("NeuroCuts Artifact Format").
var Magic = [4]byte{'N', 'C', 'A', 'F'}

// MaxArtifactBytes bounds how much Load will read; real artifacts are a few
// MB even for very large classifiers.
const MaxArtifactBytes = 1 << 30

// Metadata travels with an artifact and records how it was built. It is
// stored as JSON inside the binary envelope so the set of fields can grow
// without a schema bump.
type Metadata struct {
	// Backend is the engine registry name that built the tree ("neurocuts",
	// "hicuts", ...). Warm-started engines resolve it lazily for updates.
	Backend string `json:"backend"`
	// Rules is the classifier size at build time.
	Rules int `json:"rules"`
	// Binth is the leaf threshold the tree was built with.
	Binth int `json:"binth,omitempty"`
	// Source names the rule origin (a ClassBench family/size or file path).
	Source string `json:"source,omitempty"`
	// CreatedUnix is the build time in Unix seconds (0 when unknown).
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Note is free-form.
	Note string `json:"note,omitempty"`
}

// Artifact layout (all integers little-endian):
//
//	magic [4]byte "NCAF"
//	u32   schema version
//	u32   metadata length, then that many bytes of JSON
//	u32   rule count,      then count * 96B  {5 x (u64 lo, u64 hi), i64 priority, i64 id}
//	u32   root count,      then count * 4B   node indices
//	u32   node count,      then count * 18B  {u8 kind, u8 ndims, u32 a, u32 b, u32 cut, u32 cutN}
//	u32   leaf-rule count, then count * 4B   rule indices
//	u32   cut-desc count,  then count * 21B  {u8 dim, u32 count, u64 lo, u64 step}
//	u32   cut-point count, then count * 8B   boundaries
//	u32   CRC-32 (IEEE) of everything above
//
// Every section is length-prefixed, the trailer checksums the whole body,
// and Load re-validates all structural invariants, so truncated, corrupted
// or version-skewed bytes yield errors, never panics.
const (
	ruleRecordBytes    = rule.NumDims*16 + 16
	nodeRecordBytes    = 2 + 4*4
	cutDescRecordBytes = 1 + 4 + 8 + 8
)

// Save writes the classifier and its metadata as a versioned artifact.
func Save(w io.Writer, c *Classifier, meta Metadata) error {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("compiled: encoding metadata: %w", err)
	}
	var buf []byte
	buf = append(buf, Magic[:]...)
	buf = putU32(buf, SchemaVersion)
	buf = putU32(buf, uint32(len(metaJSON)))
	buf = append(buf, metaJSON...)

	buf = putU32(buf, uint32(len(c.rules)))
	for _, r := range c.rules {
		for _, d := range rule.Dimensions() {
			buf = putU64(buf, r.Ranges[d].Lo)
			buf = putU64(buf, r.Ranges[d].Hi)
		}
		buf = putU64(buf, uint64(int64(r.Priority)))
		buf = putU64(buf, uint64(int64(r.ID)))
	}
	buf = putU32(buf, uint32(len(c.roots)))
	for _, r := range c.roots {
		buf = putU32(buf, r)
	}
	buf = putU32(buf, uint32(len(c.nodes)))
	for i := range c.nodes {
		nd := &c.nodes[i]
		buf = append(buf, nd.kind, nd.ndims)
		buf = putU32(buf, nd.a)
		buf = putU32(buf, nd.b)
		buf = putU32(buf, nd.cut)
		// The boundary count is implied by the child count in memory but the
		// record keeps an explicit cutN field, byte-identical to artifacts
		// written before the 32-byte in-memory node repack.
		cutN := uint32(0)
		if nd.kind == kindCustomCut {
			cutN = nd.b - 1
		}
		buf = putU32(buf, cutN)
	}
	buf = putU32(buf, uint32(len(c.leafRules)))
	for _, ri := range c.leafRules {
		buf = putU32(buf, ri)
	}
	buf = putU32(buf, uint32(len(c.cutDescs)))
	for i := range c.cutDescs {
		d := &c.cutDescs[i]
		buf = append(buf, d.dim)
		buf = putU32(buf, d.count)
		buf = putU64(buf, d.lo)
		buf = putU64(buf, d.step)
	}
	buf = putU32(buf, uint32(len(c.cutPoints)))
	for _, p := range c.cutPoints {
		buf = putU64(buf, p)
	}
	buf = putU32(buf, crc32.ChecksumIEEE(buf))

	_, err = w.Write(buf)
	return err
}

// SaveFile writes the artifact to path (atomically via a temp file in the
// same directory, so a crash never leaves a truncated artifact behind).
func SaveFile(path string, c *Classifier, meta Metadata) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".artifact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, c, meta); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp opens 0600; artifacts are meant to be served by other
	// processes and users, so widen to the conventional file mode.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a versioned artifact and reconstructs the classifier. It
// verifies the magic, schema version and checksum, bounds-checks every
// section against the payload length before allocating, and re-validates
// all structural invariants, so malformed input returns an error and the
// returned classifier can never panic during lookups.
func Load(r io.Reader) (*Classifier, Metadata, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxArtifactBytes+1))
	if err != nil {
		return nil, Metadata{}, fmt.Errorf("compiled: reading artifact: %w", err)
	}
	if len(data) > MaxArtifactBytes {
		return nil, Metadata{}, fmt.Errorf("compiled: artifact exceeds %d bytes", MaxArtifactBytes)
	}
	return LoadBytes(data)
}

// LoadFile loads an artifact from path.
func LoadFile(path string) (*Classifier, Metadata, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Metadata{}, err
	}
	defer f.Close()
	return Load(f)
}

// LoadBytes is Load over an in-memory artifact (the fuzz entry point).
func LoadBytes(data []byte) (*Classifier, Metadata, error) {
	var meta Metadata
	if len(data) < len(Magic)+4+4+4 {
		return nil, meta, fmt.Errorf("compiled: artifact truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != string(Magic[:]) {
		return nil, meta, fmt.Errorf("compiled: bad magic %q", data[:4])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, meta, fmt.Errorf("compiled: checksum mismatch (artifact corrupted): got %08x want %08x", got, want)
	}

	d := &decoder{b: body, off: 4}
	if v := d.u32(); d.err == nil && v != SchemaVersion {
		return nil, meta, fmt.Errorf("compiled: artifact schema version %d, this build reads version %d", v, SchemaVersion)
	}
	metaLen := d.u32()
	metaJSON := d.bytes(uint64(metaLen))
	if d.err == nil {
		if err := json.Unmarshal(metaJSON, &meta); err != nil {
			return nil, meta, fmt.Errorf("compiled: decoding metadata: %w", err)
		}
	}

	c := &Classifier{}
	if n := d.count(ruleRecordBytes); d.err == nil {
		c.rules = make([]rule.Rule, n)
		for i := range c.rules {
			r := &c.rules[i]
			for _, dim := range rule.Dimensions() {
				r.Ranges[dim].Lo = d.u64()
				r.Ranges[dim].Hi = d.u64()
			}
			r.Priority = int(int64(d.u64()))
			r.ID = int(int64(d.u64()))
		}
	}
	if n := d.count(4); d.err == nil {
		c.roots = make([]uint32, n)
		for i := range c.roots {
			c.roots[i] = d.u32()
		}
	}
	if n := d.count(nodeRecordBytes); d.err == nil {
		c.nodes = make([]node, n)
		for i := range c.nodes {
			nd := &c.nodes[i]
			nd.kind = d.u8()
			nd.ndims = d.u8()
			nd.a = d.u32()
			nd.b = d.u32()
			nd.cut = d.u32()
			// In memory the boundary count is implied (b-1); the record's
			// explicit cutN is only checked for consistency.
			cutN := d.u32()
			if d.err == nil && nd.kind == kindCustomCut && uint64(cutN)+1 != uint64(nd.b) {
				return nil, meta, fmt.Errorf("compiled: node %d: %d boundaries need %d children, have %d", i, cutN, cutN+1, nd.b)
			}
		}
	}
	if n := d.count(4); d.err == nil {
		c.leafRules = make([]uint32, n)
		for i := range c.leafRules {
			c.leafRules[i] = d.u32()
		}
	}
	if n := d.count(cutDescRecordBytes); d.err == nil {
		c.cutDescs = make([]cutDesc, n)
		for i := range c.cutDescs {
			cd := &c.cutDescs[i]
			cd.dim = d.u8()
			cd.count = d.u32()
			cd.lo = d.u64()
			cd.step = d.u64()
		}
	}
	if n := d.count(8); d.err == nil {
		c.cutPoints = make([]uint64, n)
		for i := range c.cutPoints {
			c.cutPoints[i] = d.u64()
		}
	}
	if d.err != nil {
		return nil, meta, fmt.Errorf("compiled: %w", d.err)
	}
	if d.off != len(d.b) {
		return nil, meta, fmt.Errorf("compiled: %d trailing bytes after artifact body", len(d.b)-d.off)
	}
	// The artifact stores only the canonical descriptor slab; reconstruct the
	// denormalized per-node dispatch fields before validating, then move the
	// slab to its cache-line-aligned home.
	if err := c.deriveInline(); err != nil {
		return nil, meta, fmt.Errorf("compiled: invalid artifact: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, meta, fmt.Errorf("compiled: invalid artifact: %w", err)
	}
	c.nodes = alignNodeSlab(c.nodes)
	c.packed = packRules(c.rules)
	c.computeStats()
	return c, meta, nil
}

// decoder is a bounds-checked little-endian cursor; the first overrun
// latches err and turns every later read into a no-op.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(n uint64) {
	if d.err == nil {
		d.err = fmt.Errorf("artifact truncated: need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
	}
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(n)
		return nil
	}
	out := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// count reads a u32 element count and verifies the section's payload
// (count * recordBytes) fits in the remaining input before the caller
// allocates, so hostile counts cannot trigger huge allocations.
func (d *decoder) count(recordBytes int) uint32 {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if need := uint64(n) * uint64(recordBytes); need > uint64(len(d.b)-d.off) {
		d.fail(need)
		return 0
	}
	return n
}

func (d *decoder) u8() uint8 {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func putU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func putU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
