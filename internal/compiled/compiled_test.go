package compiled_test

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// buildTrees constructs every tree-backend shape over one classifier:
// single equal-cut trees (HiCuts, HyperCuts), multi-tree with custom cuts
// (EffiCuts), and multi-tree FiCuts+HyperSplit (CutSplit).
func buildTrees(t *testing.T, set *rule.Set) map[string][]*tree.Tree {
	t.Helper()
	out := map[string][]*tree.Tree{}
	ht, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["hicuts"] = []*tree.Tree{ht}
	hc, err := hypercuts.Build(set, hypercuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["hypercuts"] = []*tree.Tree{hc}
	ec, err := efficuts.Build(set, efficuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["efficuts"] = ec.Trees
	cs, err := cutsplit.Build(set, cutsplit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out["cutsplit"] = cs.Trees
	return out
}

func testPackets(set *rule.Set, n int) []rule.Packet {
	var ps []rule.Packet
	for _, e := range classbench.GenerateTrace(set, n*3/4, 11) {
		ps = append(ps, e.Key)
	}
	for _, e := range classbench.UniformTrace(set, n/4, 12) {
		ps = append(ps, e.Key)
	}
	return ps
}

// TestCompileLookupMatchesTree is the package-level property test: for each
// tree shape, compiled lookup must agree with both the pointer-tree lookup
// and reference linear search.
func TestCompileLookupMatchesTree(t *testing.T) {
	for _, family := range []string{"acl1", "fw1"} {
		fam, err := classbench.FamilyByName(family)
		if err != nil {
			t.Fatal(err)
		}
		set := classbench.Generate(fam, 300, 5)
		packets := testPackets(set, 2000)
		for name, trees := range buildTrees(t, set) {
			c, err := compiled.Compile(set, trees...)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", name, family, err)
			}
			for i, p := range packets {
				want := set.MatchIndex(p)
				ptr := -1
				if r, ok := tree.ClassifyMulti(trees, p); ok {
					ptr = r.Priority
				}
				got := -1
				if r, ok := c.Lookup(p); ok {
					got = r.Priority
				}
				if got != want || ptr != want {
					t.Fatalf("%s/%s packet %d %v: linear=%d pointer=%d compiled=%d",
						name, family, i, p, want, ptr, got)
				}
			}
			st := c.Stats()
			if st.Nodes == 0 || st.Leaves == 0 || st.Roots != len(trees) {
				t.Fatalf("%s/%s: implausible stats %+v", name, family, st)
			}
			if st.MaxStack < len(trees) {
				t.Fatalf("%s/%s: MaxStack %d below root count %d", name, family, st.MaxStack, len(trees))
			}
		}
	}
}

// TestCompilePartitionNodes covers KindPartition inside a single tree (the
// NeuroCuts partition action), which exercises the traversal stack.
func TestCompilePartitionNodes(t *testing.T) {
	fam, err := classbench.FamilyByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 200, 3)
	tr := tree.New(set, 16)
	if _, err := tr.PartitionByCoverage(tr.Root, rule.DimSrcIP, 0.5); err != nil {
		t.Skipf("degenerate partition on this classifier: %v", err)
	}
	for _, child := range tr.Root.Children {
		if tr.IsTerminal(child) {
			continue
		}
		if _, err := tr.Cut(child, rule.DimDstIP, 8); err != nil {
			t.Fatal(err)
		}
	}
	c, err := compiled.Compile(set, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range testPackets(set, 1000) {
		want := set.MatchIndex(p)
		got := c.LookupIndex(p)
		if got != want {
			t.Fatalf("partition tree: packet %v: linear=%d compiled=%d", p, want, got)
		}
	}
}

// TestCompileRejectsForeignRules ensures Compile refuses trees whose leaves
// reference rules outside the classifier set.
func TestCompileRejectsForeignRules(t *testing.T) {
	fam, _ := classbench.FamilyByName("acl1")
	set := classbench.Generate(fam, 50, 1)
	other := classbench.Generate(fam, 50, 99)
	tr := tree.New(other, 16)
	if _, err := compiled.Compile(set, tr); err == nil {
		t.Fatal("Compile accepted a tree over a different rule set")
	}
}

// TestSaveLoadRoundTrip checks that an artifact survives a binary round
// trip bit-exactly: identical lookups, stats and metadata.
func TestSaveLoadRoundTrip(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 300, 7)
	trees := buildTrees(t, set)["cutsplit"] // multi-tree + custom cuts
	c, err := compiled.Compile(set, trees...)
	if err != nil {
		t.Fatal(err)
	}
	meta := compiled.Metadata{Backend: "cutsplit", Rules: set.Len(), Binth: 16, Source: "acl1_300", Note: "roundtrip"}

	var buf bytes.Buffer
	if err := compiled.Save(&buf, c, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := compiled.LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("metadata changed in round trip: %+v vs %+v", gotMeta, meta)
	}
	if loaded.Stats() != c.Stats() {
		t.Fatalf("stats changed in round trip: %+v vs %+v", loaded.Stats(), c.Stats())
	}
	for _, p := range testPackets(set, 2000) {
		if a, b := c.LookupIndex(p), loaded.LookupIndex(p); a != b {
			t.Fatalf("packet %v: original=%d reloaded=%d", p, a, b)
		}
	}
	rs := loaded.RuleSet()
	if rs.Len() != set.Len() {
		t.Fatalf("rule set size changed: %d vs %d", rs.Len(), set.Len())
	}
	for i, r := range rs.Rules() {
		if !r.Equal(set.Rule(i)) || r.Priority != set.Rule(i).Priority || r.ID != set.Rule(i).ID {
			t.Fatalf("rule %d changed in round trip", i)
		}
	}

	// File round trip through the atomic SaveFile path.
	path := t.TempDir() + "/artifact.ncaf"
	if err := compiled.SaveFile(path, c, meta); err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := compiled.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Stats() != c.Stats() {
		t.Fatalf("file round trip changed stats")
	}
}

// TestLoadRejectsMalformed feeds systematically broken artifacts to Load:
// every error path must return an error (no panics, no false accepts).
func TestLoadRejectsMalformed(t *testing.T) {
	fam, _ := classbench.FamilyByName("acl1")
	set := classbench.Generate(fam, 100, 2)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := compiled.Compile(set, tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compiled.Save(&buf, c, compiled.Metadata{Backend: "hicuts", Rules: set.Len()}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, _, err := compiled.LoadBytes(valid); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}

	t.Run("empty", func(t *testing.T) {
		if _, _, err := compiled.LoadBytes(nil); err == nil {
			t.Fatal("accepted empty input")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] ^= 0xff
		if _, _, err := compiled.LoadBytes(bad); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{1, 3, 8, 15, 40, len(valid) / 2, len(valid) - 1} {
			if n >= len(valid) {
				continue
			}
			if _, _, err := compiled.LoadBytes(valid[:n]); err == nil {
				t.Fatalf("accepted truncation to %d bytes", n)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for off := 4; off < len(valid); off += 7 {
			bad := append([]byte(nil), valid...)
			bad[off] ^= 0x40
			if _, _, err := compiled.LoadBytes(bad); err == nil {
				t.Fatalf("accepted bit flip at offset %d", off)
			}
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := versionSkewed(valid, compiled.SchemaVersion+1)
		_, _, err := compiled.LoadBytes(bad)
		if err == nil {
			t.Fatal("accepted version-skewed artifact")
		}
		if !strings.Contains(err.Error(), "schema version") {
			t.Fatalf("version skew not reported as such: %v", err)
		}
	})
}

// versionSkewed rewrites the artifact's schema version and repairs the
// checksum, isolating the version check from the corruption check.
func versionSkewed(valid []byte, version uint32) []byte {
	bad := append([]byte(nil), valid...)
	bad[4] = byte(version)
	bad[5] = byte(version >> 8)
	bad[6] = byte(version >> 16)
	bad[7] = byte(version >> 24)
	fixChecksum(bad)
	return bad
}

// TestSchemaVersionMatchesCommitted pins compiled.SchemaVersion to the
// committed ARTIFACT_SCHEMA_VERSION file, so a schema bump is always an
// explicit change that shows up in review (CI asserts the same).
func TestSchemaVersionMatchesCommitted(t *testing.T) {
	b, err := os.ReadFile("../../ARTIFACT_SCHEMA_VERSION")
	if err != nil {
		t.Fatalf("reading committed schema version: %v", err)
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		t.Fatalf("parsing ARTIFACT_SCHEMA_VERSION: %v", err)
	}
	if v != compiled.SchemaVersion {
		t.Fatalf("ARTIFACT_SCHEMA_VERSION=%d but compiled.SchemaVersion=%d: bump both together", v, compiled.SchemaVersion)
	}
}
