package compiled

import (
	"math/rand"

	"neurocuts/internal/rule"
)

// This file reconstructs the header-space boxes of a compiled tree's deepest
// leaves and synthesizes packets inside them. The perf lab uses it to build
// adversarial worst-case-depth traces: every packet is steered down a
// maximum-length dependent-load chain, the workload where the grouped batch
// traversal's prefetch overlap matters most (and where a rule-directed trace,
// which lands on popular mid-depth leaves, measures least).

// dimBox is one dimension's inclusive packet-value interval.
type dimBox struct{ lo, hi uint64 }

// maxDeepLeaves bounds how many distinct deepest leaves the synthesizer
// targets; beyond that the packets just round-robin the collected boxes.
const maxDeepLeaves = 64

// WorstCaseDepthPackets returns n packets steered to the classifier's
// deepest reachable leaves: the leaf set at maximum tree depth is located,
// each leaf's header-space box is reconstructed by replaying the cut
// decisions on its root path, and packets are drawn uniformly from those
// boxes (round-robin across leaves). Generation is deterministic in seed.
// Returns nil when the classifier has no nodes or n <= 0.
func (c *Classifier) WorstCaseDepthPackets(n int, seed int64) []rule.Packet {
	if n <= 0 || len(c.nodes) == 0 || len(c.roots) == 0 {
		return nil
	}
	parent, depth := c.walkDepths()

	// Gather leaves deepest-first until enough reachable boxes are in hand;
	// a leaf can be unreachable when a degenerate cut (box smaller than its
	// fan-out) leaves some children with empty value intervals.
	order := make([]int, 0, len(c.nodes))
	maxDepth := int32(0)
	for i := range c.nodes {
		if c.nodes[i].kind == kindLeaf && depth[i] >= 0 {
			order = append(order, i)
			if depth[i] > maxDepth {
				maxDepth = depth[i]
			}
		}
	}
	if len(order) == 0 {
		return nil
	}
	var boxes [][rule.NumDims]dimBox
	for d := maxDepth; d >= 0 && len(boxes) == 0; d-- {
		for _, li := range order {
			if depth[li] != d {
				continue
			}
			if box, ok := c.leafBox(li, parent); ok {
				boxes = append(boxes, box)
				if len(boxes) == maxDeepLeaves {
					break
				}
			}
		}
	}
	if len(boxes) == 0 {
		return nil
	}

	rng := rand.New(rand.NewSource(seed))
	out := make([]rule.Packet, n)
	for i := range out {
		box := &boxes[i%len(boxes)]
		pick := func(d rule.Dimension) uint64 {
			b := box[d]
			return b.lo + rng.Uint64()%(b.hi-b.lo+1)
		}
		out[i] = rule.Packet{
			SrcIP:   uint32(pick(rule.DimSrcIP)),
			DstIP:   uint32(pick(rule.DimDstIP)),
			SrcPort: uint16(pick(rule.DimSrcPort)),
			DstPort: uint16(pick(rule.DimDstPort)),
			Proto:   uint8(pick(rule.DimProto)),
		}
	}
	return out
}

// walkDepths BFSes the forest from the roots, recording each node's parent
// and depth (-1 for unreached slots). Every node has at most one parent by
// construction (child spans are disjoint), so a plain queue visits each node
// once.
func (c *Classifier) walkDepths() (parent, depth []int32) {
	parent = make([]int32, len(c.nodes))
	depth = make([]int32, len(c.nodes))
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	queue := make([]uint32, 0, len(c.roots))
	for _, r := range c.roots {
		depth[r] = 0
		queue = append(queue, r)
	}
	for qi := 0; qi < len(queue); qi++ {
		i := queue[qi]
		nd := &c.nodes[i]
		if nd.kind == kindLeaf {
			continue
		}
		for j := uint32(0); j < nd.b; j++ {
			ch := nd.a + j
			parent[ch] = int32(i)
			depth[ch] = depth[i] + 1
			queue = append(queue, ch)
		}
	}
	return parent, depth
}

// leafBox reconstructs the packet-value box that routes a lookup to leaf li:
// walk the parent chain up to the root, then replay each internal node's
// decision for the child slot actually taken, narrowing the per-dimension
// intervals. ok=false means some interval emptied (the leaf is unreachable).
func (c *Classifier) leafBox(li int, parent []int32) (box [rule.NumDims]dimBox, ok bool) {
	var path []uint32
	for i := int32(li); i >= 0; i = parent[i] {
		path = append(path, uint32(i))
	}
	for _, d := range rule.Dimensions() {
		box[d] = dimBox{lo: 0, hi: d.MaxValue()}
	}
	// path is leaf..root; replay root..leaf.
	for pi := len(path) - 1; pi > 0; pi-- {
		nd := &c.nodes[path[pi]]
		slot := path[pi-1] - nd.a
		switch nd.kind {
		case kindPartition:
			// Children split the rules, not the header space.
		case kindCut:
			if nd.ndims == 1 {
				if !narrowCut(&box[nd.dim0], slot, nd.lo0, nd.step0, nd.b) {
					return box, false
				}
				continue
			}
			// Mixed-radix decode, least-significant descriptor last (the
			// encoder folds idx = idx*count + piece in descriptor order).
			var pieces [rule.NumDims]uint32
			rem := slot
			for k := int(nd.ndims) - 1; k >= 0; k-- {
				d := &c.cutDescs[nd.cut+uint32(k)]
				pieces[k] = rem % d.count
				rem /= d.count
			}
			for k := 0; k < int(nd.ndims); k++ {
				d := &c.cutDescs[nd.cut+uint32(k)]
				if !narrowCut(&box[d.dim], pieces[k], d.lo, normStep(d.step), d.count) {
					return box, false
				}
			}
		case kindCustomCut:
			pts := c.cutPoints[nd.cut : nd.cut+nd.b-1]
			b := &box[nd.ndims]
			if slot > 0 && pts[slot-1] > b.lo {
				b.lo = pts[slot-1]
			}
			if int(slot) < len(pts) {
				if pts[slot] == 0 {
					return box, false
				}
				if pts[slot]-1 < b.hi {
					b.hi = pts[slot] - 1
				}
			}
			if b.lo > b.hi {
				return box, false
			}
		}
	}
	return box, true
}

// narrowCut intersects one dimension's box with the value interval that an
// equal-sized cut routes to piece. The interval mirrors cutPiece exactly:
// piece 0 captures everything below lo+step (including v <= lo), the last
// piece absorbs the division remainder upward.
func narrowCut(b *dimBox, piece uint32, lo, step uint64, count uint32) bool {
	if piece > 0 {
		plo := lo + uint64(piece)*step
		if uint64(piece)*step/uint64(piece) != step || plo < lo {
			// Overflowed: this piece starts beyond the value space entirely
			// (step was normalized from a degenerate zero-step cut).
			return false
		}
		if plo > b.lo {
			b.lo = plo
		}
	}
	if piece < count-1 {
		// Exclusive upper bound lo + (piece+1)*step, saturating on overflow
		// (a saturated bound constrains nothing).
		hi := lo + uint64(piece+1)*step
		if uint64(piece+1)*step/uint64(piece+1) == step && hi > lo {
			if hi-1 < b.hi {
				b.hi = hi - 1
			}
		}
	}
	return b.lo <= b.hi
}
