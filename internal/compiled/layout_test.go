package compiled

import (
	"math"
	"testing"
	"unsafe"

	"neurocuts/internal/classbench"
	"neurocuts/internal/hicuts"
)

// TestNodeLayout pins the hot-struct geometry the batch traversal is built
// around: a 32-byte node (two per cache line, so one line fill exposes every
// dispatch-relevant field), a 32-byte packed match record, and accounting
// constants that match the real struct sizes. A future field addition that
// silently fattens either struct fails here instead of quietly halving the
// nodes-per-line density.
func TestNodeLayout(t *testing.T) {
	if got := unsafe.Sizeof(node{}); got != nodeBytes {
		t.Errorf("node size = %d bytes, layout pinned at %d", got, nodeBytes)
	}
	if got := unsafe.Alignof(node{}); got != 8 {
		t.Errorf("node alignment = %d, want 8", got)
	}
	if nodeLineAlign%nodeBytes != 0 {
		t.Errorf("node size %d does not pack the %d-byte line evenly", nodeBytes, nodeLineAlign)
	}
	if got := unsafe.Sizeof(packedRule{}); got != packedRuleBytes {
		t.Errorf("packedRule size = %d bytes, layout pinned at %d", got, packedRuleBytes)
	}
	if got := unsafe.Sizeof(cutDesc{}); got != cutDescBytes {
		t.Errorf("cutDesc size = %d bytes, accounting uses %d", got, cutDescBytes)
	}
}

// TestNodeSlabAlignment asserts alignNodeSlab really lands the slab on a
// cache-line boundary (Go slice allocations alone only guarantee 8) and
// preserves the node contents.
func TestNodeSlabAlignment(t *testing.T) {
	if got := alignNodeSlab(nil); got != nil {
		t.Errorf("empty slab should pass through, got %v", got)
	}
	for _, n := range []int{1, 2, 3, 17, 1024} {
		src := make([]node, n)
		for i := range src {
			src[i].a = uint32(i + 1)
			src[i].lo0 = uint64(i) << 32
		}
		slab := alignNodeSlab(src)
		if len(slab) != n {
			t.Fatalf("n=%d: slab length %d", n, len(slab))
		}
		if addr := uintptr(unsafe.Pointer(&slab[0])); addr%nodeLineAlign != 0 {
			t.Errorf("n=%d: slab at %#x not %d-byte aligned", n, addr, nodeLineAlign)
		}
		for i := range slab {
			if slab[i].a != uint32(i+1) || slab[i].lo0 != uint64(i)<<32 {
				t.Fatalf("n=%d: node %d corrupted by aligned copy", n, i)
			}
		}
	}
}

// TestLeafSpansPriorityOrdered pins the property the early-exit leaf scan
// (scalar and batch alike) depends on: every leaf's rule span is contiguous
// in the shared slab and sorted by ascending priority. validate() enforces
// it on load; this test keeps the guarantee visible (and tested) against a
// real compiled tree.
func TestLeafSpansPriorityOrdered(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 400, 3)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(set, tr)
	if err != nil {
		t.Fatal(err)
	}
	leaves := 0
	for i := range c.nodes {
		nd := &c.nodes[i]
		if nd.kind != kindLeaf {
			continue
		}
		leaves++
		prev := int32(math.MinInt32)
		for j := nd.a; j < nd.a+nd.b; j++ {
			prio := c.packed[c.leafRules[j]].prio
			if prio < prev {
				t.Fatalf("node %d: leaf span not priority-sorted (%d after %d)", i, prio, prev)
			}
			prev = prio
		}
	}
	if leaves == 0 {
		t.Fatal("compiled tree has no leaves")
	}
}
