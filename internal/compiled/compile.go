package compiled

import (
	"errors"
	"fmt"
	"math"

	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// Compile flattens one or more finished decision trees over the classifier
// set into the immutable serving form. Every rule referenced by a tree leaf
// must exist in the set (trees are built from the set, so this holds by
// construction); multi-tree backends pass all their trees and lookups take
// the best match across them.
func Compile(set *rule.Set, trees ...*tree.Tree) (*Classifier, error) {
	if set == nil {
		return nil, errors.New("compiled: nil rule set")
	}
	if len(trees) == 0 {
		return nil, errors.New("compiled: no trees to compile")
	}
	ruleIdx := make(map[rule.Rule]uint32, set.Len())
	for i, r := range set.Rules() {
		ruleIdx[r] = uint32(i)
	}

	c := &Classifier{rules: append([]rule.Rule(nil), set.Rules()...)}

	// BFS across all trees: the pointer queue parallels c.nodes, children
	// are appended contiguously when their parent is processed, so child
	// spans are contiguous and child indices always exceed the parent's.
	var queue []*tree.Node
	for ti, t := range trees {
		if t == nil || t.Root == nil {
			return nil, fmt.Errorf("compiled: tree %d is nil", ti)
		}
		c.roots = append(c.roots, uint32(len(queue)))
		queue = append(queue, t.Root)
		c.nodes = append(c.nodes, node{})
	}
	for i := 0; i < len(queue); i++ {
		pn := queue[i]
		nd, err := c.compileNode(pn, ruleIdx, &queue)
		if err != nil {
			return nil, err
		}
		c.nodes[i] = nd
	}

	c.nodes = alignNodeSlab(c.nodes)
	c.packed = packRules(c.rules)
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("compiled: internal inconsistency: %w", err)
	}
	c.computeStats()
	return c, nil
}

// compileNode converts one pointer node, appending its children to the
// shared BFS queue (and reserving their slots in c.nodes).
func (c *Classifier) compileNode(pn *tree.Node, ruleIdx map[rule.Rule]uint32, queue *[]*tree.Node) (node, error) {
	if pn.IsLeaf() {
		nd := node{kind: kindLeaf, a: uint32(len(c.leafRules)), b: uint32(len(pn.Rules))}
		prev := math.MinInt
		for _, r := range pn.Rules {
			idx, ok := ruleIdx[r]
			if !ok {
				return node{}, fmt.Errorf("compiled: leaf rule %v not found in classifier set", r)
			}
			if r.Priority < prev {
				return node{}, fmt.Errorf("compiled: leaf rules out of priority order at %v", r)
			}
			prev = r.Priority
			c.leafRules = append(c.leafRules, idx)
		}
		return nd, nil
	}

	childLo := uint32(len(*queue))
	for _, ch := range pn.Children {
		*queue = append(*queue, ch)
		c.nodes = append(c.nodes, node{})
	}
	nd := node{a: childLo, b: uint32(len(pn.Children))}

	switch {
	case pn.Kind == tree.KindPartition:
		nd.kind = kindPartition
		return nd, nil

	case pn.Kind == tree.KindCut && pn.CustomCut:
		if len(pn.CutDims) != 1 {
			return node{}, fmt.Errorf("compiled: custom cut over %d dimensions", len(pn.CutDims))
		}
		dim := pn.CutDims[0]
		nd.kind = kindCustomCut
		nd.ndims = uint8(dim)
		nd.cut = uint32(len(c.cutPoints))
		// The boundary count is implied: nd.b - 1.
		// Recover the boundaries from the child boxes: child j starts at
		// its own Lo, so the points are the Lo of children 1..k-1.
		prev := pn.Children[0].Box[dim].Lo
		for _, ch := range pn.Children[1:] {
			p := ch.Box[dim].Lo
			if p <= prev {
				return node{}, fmt.Errorf("compiled: custom cut boundaries not increasing (%d after %d)", p, prev)
			}
			c.cutPoints = append(c.cutPoints, p)
			prev = p
		}
		return nd, nil

	case pn.Kind == tree.KindCut:
		if len(pn.CutDims) == 0 || len(pn.CutDims) != len(pn.CutCounts) {
			return node{}, fmt.Errorf("compiled: malformed cut node (%d dims, %d counts)", len(pn.CutDims), len(pn.CutCounts))
		}
		nd.kind = kindCut
		nd.ndims = uint8(len(pn.CutDims))
		nd.cut = uint32(len(c.cutDescs))
		product := 1
		for i, d := range pn.CutDims {
			count := pn.CutCounts[i]
			if count < 1 {
				return node{}, fmt.Errorf("compiled: cut count %d in %s", count, d)
			}
			box := pn.Box[d]
			c.cutDescs = append(c.cutDescs, cutDesc{
				lo:    box.Lo,
				step:  box.Size() / uint64(count),
				count: uint32(count),
				dim:   uint8(d),
			})
			product *= count
		}
		if product != len(pn.Children) {
			return node{}, fmt.Errorf("compiled: cut fan-out %d does not match %d children", product, len(pn.Children))
		}
		// Denormalize the first descriptor into the node so single-dimension
		// cuts dispatch from the node's own cache line.
		d0 := &c.cutDescs[nd.cut]
		nd.dim0 = d0.dim
		nd.lo0 = d0.lo
		nd.step0 = normStep(d0.step)
		return nd, nil

	default:
		return node{}, fmt.Errorf("compiled: unknown node kind %v", pn.Kind)
	}
}

// validate checks every structural invariant the lookup path relies on:
// all spans in bounds, child indices strictly greater than the parent's
// (termination), cut fan-outs consistent with child counts, boundary points
// increasing, leaf spans priority-ordered, and rule ranges within their
// dimension widths. Load calls it on untrusted bytes; Compile calls it as a
// cheap self-check.
func (c *Classifier) validate() error {
	nNodes := uint64(len(c.nodes))
	nLeafRules := uint64(len(c.leafRules))
	nRules := uint64(len(c.rules))
	nDescs := uint64(len(c.cutDescs))
	nPoints := uint64(len(c.cutPoints))

	for i, r := range c.rules {
		for _, d := range rule.Dimensions() {
			rg := r.Ranges[d]
			if rg.Lo > rg.Hi || rg.Hi > d.MaxValue() {
				return fmt.Errorf("rule %d: range %v invalid for %s", i, rg, d)
			}
		}
		if r.Priority < math.MinInt32 || r.Priority > math.MaxInt32 {
			return fmt.Errorf("rule %d: priority %d out of range", i, r.Priority)
		}
		if i > 0 && r.Priority < c.rules[i-1].Priority {
			return fmt.Errorf("rule %d: priorities not in ascending order", i)
		}
	}

	for _, r := range c.roots {
		if uint64(r) >= nNodes {
			return fmt.Errorf("root index %d out of range (%d nodes)", r, nNodes)
		}
	}

	checkChildren := func(i int, nd *node) error {
		if nd.b == 0 {
			return fmt.Errorf("node %d: internal node with no children", i)
		}
		if uint64(nd.a) <= uint64(i) {
			return fmt.Errorf("node %d: child span starts at %d (must be after parent)", i, nd.a)
		}
		if uint64(nd.a)+uint64(nd.b) > nNodes {
			return fmt.Errorf("node %d: child span [%d,+%d) out of range (%d nodes)", i, nd.a, nd.b, nNodes)
		}
		return nil
	}

	for i := range c.nodes {
		nd := &c.nodes[i]
		switch nd.kind {
		case kindLeaf:
			if uint64(nd.a)+uint64(nd.b) > nLeafRules {
				return fmt.Errorf("node %d: leaf span [%d,+%d) out of range (%d refs)", i, nd.a, nd.b, nLeafRules)
			}
			prev := int32(math.MinInt32)
			for j := nd.a; j < nd.a+nd.b; j++ {
				ri := c.leafRules[j]
				if uint64(ri) >= nRules {
					return fmt.Errorf("node %d: leaf rule ref %d out of range (%d rules)", i, ri, nRules)
				}
				prio := int32(c.rules[ri].Priority)
				if prio < prev {
					return fmt.Errorf("node %d: leaf rules not in priority order", i)
				}
				prev = prio
			}
		case kindCut:
			if err := checkChildren(i, nd); err != nil {
				return err
			}
			if nd.ndims == 0 || nd.ndims > rule.NumDims {
				return fmt.Errorf("node %d: cut over %d dimensions", i, nd.ndims)
			}
			if uint64(nd.cut)+uint64(nd.ndims) > nDescs {
				return fmt.Errorf("node %d: cut descriptor span out of range", i)
			}
			product := uint64(1)
			for k := uint32(0); k < uint32(nd.ndims); k++ {
				d := c.cutDescs[nd.cut+k]
				if d.dim >= rule.NumDims {
					return fmt.Errorf("node %d: cut dimension %d invalid", i, d.dim)
				}
				if d.count == 0 {
					return fmt.Errorf("node %d: zero cut count", i)
				}
				product *= uint64(d.count)
				if product > nNodes {
					return fmt.Errorf("node %d: cut fan-out %d exceeds node count", i, product)
				}
			}
			if product != uint64(nd.b) {
				return fmt.Errorf("node %d: cut fan-out %d does not match %d children", i, product, nd.b)
			}
			d0 := c.cutDescs[nd.cut]
			if nd.dim0 != d0.dim || nd.lo0 != d0.lo || nd.step0 != normStep(d0.step) {
				return fmt.Errorf("node %d: inline cut descriptor out of sync with slab", i)
			}
		case kindCustomCut:
			if err := checkChildren(i, nd); err != nil {
				return err
			}
			if nd.ndims >= rule.NumDims {
				return fmt.Errorf("node %d: custom cut dimension %d invalid", i, nd.ndims)
			}
			cutN := nd.b - 1 // boundary count is implied by the child count
			if cutN == 0 || uint64(nd.cut)+uint64(cutN) > nPoints {
				return fmt.Errorf("node %d: boundary span out of range", i)
			}
			prev := uint64(0)
			for k := uint32(0); k < cutN; k++ {
				p := c.cutPoints[nd.cut+k]
				if k > 0 && p <= prev {
					return fmt.Errorf("node %d: boundaries not strictly increasing", i)
				}
				prev = p
			}
		case kindPartition:
			if err := checkChildren(i, nd); err != nil {
				return err
			}
		default:
			return fmt.Errorf("node %d: unknown kind %d", i, nd.kind)
		}
	}
	return nil
}
