package compiled

import (
	"math"

	"neurocuts/internal/rule"
)

// lookupStackSize is the traversal stack capacity kept on the goroutine
// stack. Classifiers whose compile-time MaxStack exceeds it (pathological
// partition nesting) fall back to a pooled heap stack; every tree this
// repository builds stays far below the bound.
const lookupStackSize = 128

// overflowStacks recycles traversal stacks for classifiers whose MaxStack
// exceeds lookupStackSize, so even pathological trees look up without a
// per-call allocation once the freelist is warm. A buffered channel rather
// than sync.Pool so the allocs/op guarantee also holds under the race
// detector (Pool randomly drops Puts there); see batchScratches.
var overflowStacks = make(chan *[]uint32, 16)

func getOverflowStack(minCap int) *[]uint32 {
	select {
	case sp := <-overflowStacks:
		if cap(*sp) < minCap {
			*sp = make([]uint32, 0, minCap)
		}
		return sp
	default:
		s := make([]uint32, 0, minCap)
		return &s
	}
}

func putOverflowStack(sp *[]uint32) {
	select {
	case overflowStacks <- sp:
	default:
	}
}

// Lookup returns the highest-priority rule matching the packet, or ok=false
// when no rule matches. It is allocation-free and safe for concurrent use.
func (c *Classifier) Lookup(p rule.Packet) (rule.Rule, bool) {
	idx := c.LookupIndex(p)
	if idx < 0 {
		return rule.Rule{}, false
	}
	return c.rules[idx], true
}

// LookupIndex returns the index into Rules() of the best match, or -1.
//
// The traversal is iterative: cut nodes descend directly (one arithmetic
// child computation per step), while partition nodes and the per-tree roots
// push pending node indices onto a small stack. Leaf rule spans are sorted
// by priority, so a leaf scan stops at the first match and whole leaves are
// skipped once a better match is already held.
func (c *Classifier) LookupIndex(p rule.Packet) int {
	var stackArr [lookupStackSize]uint32
	if c.stats.MaxStack <= lookupStackSize {
		return c.lookupIndex(p, stackArr[:0])
	}
	sp := getOverflowStack(c.stats.MaxStack)
	best := c.lookupIndex(p, (*sp)[:0])
	putOverflowStack(sp)
	return best
}

// cutPiece locates the piece index of value v under an equal-sized cut with
// origin lo, normalized step (see normStep) and the given fan-out. It is
// branch-free — the clamp and the v<=lo guard compile to conditional moves —
// and mirrors tree.childForPacket exactly: piece 0 when v <= lo, otherwise
// (v-lo)/step with the final piece absorbing the division remainder.
func cutPiece(v, lo, step uint64, count uint32) uint32 {
	q := uint32((v - lo) / step)
	if q > count-1 {
		q = count - 1
	}
	if v <= lo {
		q = 0
	}
	return q
}

// lookupIndex is the traversal core behind LookupIndex; the caller supplies
// the (empty) stack so the fixed-size fast path and the pooled overflow path
// share one implementation.
func (c *Classifier) lookupIndex(p rule.Packet, stack []uint32) int {
	stack = append(stack, c.roots...)

	best := -1
	bestPrio := int32(math.MaxInt32)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
	descend:
		for {
			nd := &c.nodes[cur]
			switch nd.kind {
			case kindCut:
				if nd.ndims == 1 {
					// Single-dimension cut: the fan-out is the child count
					// and the descriptor is inline, so dispatch touches only
					// the node's own cache line.
					v := p.Field(rule.Dimension(nd.dim0))
					cur = nd.a + cutPiece(v, nd.lo0, nd.step0, nd.b)
					continue descend
				}
				idx := uint32(0)
				base := nd.cut
				for k := uint32(0); k < uint32(nd.ndims); k++ {
					d := &c.cutDescs[base+k]
					v := p.Field(rule.Dimension(d.dim))
					var piece uint32
					if v > d.lo && d.step > 0 {
						piece = uint32((v - d.lo) / d.step)
						if piece >= d.count {
							// The final piece absorbs the division remainder.
							piece = d.count - 1
						}
					}
					idx = idx*d.count + piece
				}
				cur = nd.a + idx
				continue descend

			case kindCustomCut:
				v := p.Field(rule.Dimension(nd.ndims))
				pts := c.cutPoints[nd.cut : nd.cut+nd.b-1]
				// Child index = number of boundaries <= v.
				lo, hi := 0, len(pts)
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if pts[mid] <= v {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				cur = nd.a + uint32(lo)
				continue descend

			case kindLeaf:
				end := nd.a + nd.b
				for i := nd.a; i < end; i++ {
					ri := c.leafRules[i]
					r := &c.packed[ri]
					if r.prio >= bestPrio {
						// Rules in a leaf are priority-sorted: nothing later
						// in this leaf can improve on the current best.
						break
					}
					if p.SrcIP < r.srcLo || p.SrcIP > r.srcHi ||
						p.DstIP < r.dstLo || p.DstIP > r.dstHi ||
						p.SrcPort < r.spLo || p.SrcPort > r.spHi ||
						p.DstPort < r.dpLo || p.DstPort > r.dpHi ||
						p.Proto < r.prLo || p.Proto > r.prHi {
						continue
					}
					best = int(ri)
					bestPrio = r.prio
					break
				}
				break descend

			default: // kindPartition: every child holds part of the rules.
				for j := uint32(0); j < nd.b; j++ {
					stack = append(stack, nd.a+j)
				}
				break descend
			}
		}
	}
	return best
}

// Note for update-overlay integrators: a deletion-masked variant of Lookup
// (skip tombstoned rules inside the leaf scans) is deliberately NOT
// provided. Tree construction prunes leaf rules that a higher-priority rule
// shadows inside the leaf's box, so a rule absent from the leaves can still
// be the best surviving match once its shadower is deleted — an in-tree
// mask would silently miss it. Callers that overlay deletions on a compiled
// base (internal/updater) must instead check the plain Lookup winner
// against their tombstone set and rescan on a hit.
