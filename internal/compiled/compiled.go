// Package compiled is the immutable, cache-friendly serving representation
// shared by every tree-based classification backend in this repository
// (NeuroCuts, HiCuts, HyperCuts, EffiCuts, CutSplit).
//
// The build-time representation (internal/tree) is a pointer-linked tree:
// convenient to grow one action at a time, but hostile to the serve path —
// every step of a lookup chases a pointer, leaves hold their own rule slices,
// and partition nodes force recursion. Compile flattens one or more finished
// trees into contiguous arrays:
//
//   - nodes live in one []node slab in BFS order, children of a node are a
//     contiguous index span (child indices are always greater than the
//     parent's, so traversal provably terminates);
//   - leaves reference rules as spans into one shared []uint32 slab of
//     indices into the classifier's rule list, so rule replication costs 4
//     bytes per reference instead of a 96-byte rule copy;
//   - cut geometry (origin, step, fan-out per dimension) is stored in flat
//     descriptor arrays, and rules are additionally packed into a 32-byte
//     match-only form so the leaf scan touches nothing but small integers.
//
// Lookup is iterative and allocation-free: a fixed-size index stack replaces
// recursion (partition nodes and multi-tree classifiers push work onto it),
// sized at compile time so the fallback heap path is never taken for
// real-world trees.
//
// The compiled form is also the repository's on-disk artifact: Save/Load
// give it a versioned, length-prefixed, checksummed binary encoding so a
// tree trained or built once can be served by later processes without
// rebuilding (see format.go).
package compiled

import (
	"fmt"
	"unsafe"

	"neurocuts/internal/rule"
)

// Node kinds of the flat representation.
const (
	// kindLeaf scans its rule span linearly.
	kindLeaf uint8 = iota
	// kindCut locates one child arithmetically from equal-sized cut geometry
	// (possibly over several dimensions at once).
	kindCut
	// kindCustomCut locates one child by binary search over explicit
	// boundary points in a single dimension (equi-dense cuts).
	kindCustomCut
	// kindPartition pushes every child: each holds a disjoint rule subset
	// over the same box, so all must be consulted.
	kindPartition

	kindMax = kindPartition
)

// node is one flat tree node, packed to exactly 32 bytes so two nodes share
// each 64-byte cache line and every dispatch-relevant field of a node is
// reachable from one line fill (pinned by TestNodeLayout). The a/b fields
// are overloaded by kind: leaves use them as a span into the leaf-rule slab,
// internal nodes as a span of child node indices.
//
// The first cut descriptor of a kindCut node is denormalized inline
// (dim0/lo0/step0): single-dimension cuts — the overwhelmingly common case —
// dispatch without touching the cutDescs slab at all, because their fan-out
// equals the child count b. Multi-dimension cuts still read their full
// descriptor span. The boundary count of a kindCustomCut node is always its
// child count minus one, so it is not stored. Both facts keep the on-disk
// record (which still carries an explicit cutN) derivable, so the artifact
// schema is unchanged; Load reconstructs the inline fields (deriveInline).
type node struct {
	kind uint8
	// ndims is the cut-dimension count for kindCut and the single cut
	// dimension index for kindCustomCut; unused otherwise.
	ndims uint8
	// dim0 is the first cut dimension for kindCut (== cutDescs[cut].dim).
	dim0 uint8
	_    uint8
	// a is the first leaf-rule index (leaf) or first child node index.
	a uint32
	// b is the leaf-rule count (leaf) or child count. For kindCustomCut the
	// boundary point count is b-1.
	b uint32
	// cut is the first cut-descriptor index (kindCut) or the first boundary
	// point index (kindCustomCut).
	cut uint32
	// lo0/step0 are the first cut descriptor's origin and step for kindCut,
	// with a step of 0 normalized to MaxUint64 so piece computation divides
	// unconditionally (see cutPiece); packet field values are at most 32-bit,
	// so the normalized divide still always yields piece 0.
	lo0   uint64
	step0 uint64
}

// cutDesc describes an equal-sized cut in one dimension: piece index is
// (v - lo) / step, clamped to count-1 so the final remainder piece absorbs
// the tail (mirroring tree.splitRange's layout exactly).
type cutDesc struct {
	lo    uint64
	step  uint64
	count uint32
	dim   uint8
}

// packedRule is the match-only projection of a rule: 32 bytes of unsigned
// bounds plus the priority, laid out so a leaf scan compares machine words
// without touching the full 96-byte rule.Rule.
type packedRule struct {
	srcLo, srcHi uint32
	dstLo, dstHi uint32
	prio         int32
	spLo, spHi   uint16
	dpLo, dpHi   uint16
	prLo, prHi   uint8
}

// Classifier is the immutable compiled form of one classifier: one or more
// flattened decision trees over a shared rule list. It is safe for
// concurrent use; all fields are read-only after Compile or Load.
type Classifier struct {
	// rules is the full classifier in priority order (what Lookup returns).
	rules []rule.Rule
	// packed is rules projected to the match-only form, index-aligned.
	packed []packedRule
	// nodes is the flat node slab across all trees, children contiguous.
	nodes []node
	// leafRules is the shared slab of rule indices referenced by leaves.
	leafRules []uint32
	// cutDescs holds equal-cut geometry spans referenced by kindCut nodes.
	cutDescs []cutDesc
	// cutPoints holds boundary spans referenced by kindCustomCut nodes.
	cutPoints []uint64
	// roots indexes the root node of each compiled tree.
	roots []uint32

	stats Stats
}

// Stats summarises a compiled classifier's structure.
type Stats struct {
	// Nodes and Leaves count the flat nodes.
	Nodes  int
	Leaves int
	// Roots is the number of compiled trees (EffiCuts/CutSplit build
	// several; single-tree backends have 1).
	Roots int
	// Rules is the size of the shared rule list.
	Rules int
	// LeafRuleRefs is the total number of leaf rule references (RuleRefs /
	// Rules is the replication factor).
	LeafRuleRefs int
	// MaxStack is the worst-case traversal stack occupancy, computed at
	// compile time; lookups below lookupStackSize run allocation-free.
	MaxStack int
	// WorstCaseVisits is the worst-case number of node visits per lookup
	// (max over cut children, sum over partition children and roots).
	WorstCaseVisits int
	// MemoryBytes is the actual byte size of the serving arrays (nodes,
	// leaf-rule slab, cut geometry, packed rules), excluding the full
	// rule.Rule list kept for returning matches.
	MemoryBytes int
}

// Stats returns the classifier's structural summary.
func (c *Classifier) Stats() Stats { return c.stats }

// Rules returns the classifier's rule list in priority order. The slice
// must not be modified.
func (c *Classifier) Rules() []rule.Rule { return c.rules }

// RuleSet reconstructs a rule.Set over the classifier's rules, preserving
// priorities and IDs. Engine warm starts use it as the update base.
func (c *Classifier) RuleSet() *rule.Set {
	return rule.NewSetKeepPriorities(c.rules)
}

// packRules projects rules to their match-only form. Callers must have
// validated that every range fits its dimension's width.
func packRules(rules []rule.Rule) []packedRule {
	out := make([]packedRule, len(rules))
	for i, r := range rules {
		out[i] = packedRule{
			srcLo: uint32(r.Ranges[rule.DimSrcIP].Lo),
			srcHi: uint32(r.Ranges[rule.DimSrcIP].Hi),
			dstLo: uint32(r.Ranges[rule.DimDstIP].Lo),
			dstHi: uint32(r.Ranges[rule.DimDstIP].Hi),
			prio:  int32(r.Priority),
			spLo:  uint16(r.Ranges[rule.DimSrcPort].Lo),
			spHi:  uint16(r.Ranges[rule.DimSrcPort].Hi),
			dpLo:  uint16(r.Ranges[rule.DimDstPort].Lo),
			dpHi:  uint16(r.Ranges[rule.DimDstPort].Hi),
			prLo:  uint8(r.Ranges[rule.DimProto].Lo),
			prHi:  uint8(r.Ranges[rule.DimProto].Hi),
		}
	}
	return out
}

// computeStats fills c.stats: sizes, worst-case lookup cost and the
// traversal stack bound. Children always have larger indices than their
// parent, so one reverse pass computes both bottom-up quantities.
func (c *Classifier) computeStats() {
	st := Stats{
		Nodes: len(c.nodes),
		Roots: len(c.roots),
		Rules: len(c.rules),
	}
	// growth[i]: max stack slots used while processing the subtree at i
	// (node i itself already popped). visits[i]: worst-case node visits.
	growth := make([]int, len(c.nodes))
	visits := make([]int, len(c.nodes))
	for i := len(c.nodes) - 1; i >= 0; i-- {
		nd := &c.nodes[i]
		switch nd.kind {
		case kindLeaf:
			st.Leaves++
			st.LeafRuleRefs += int(nd.b)
			visits[i] = 1
		case kindCut, kindCustomCut:
			maxG, maxV := 0, 0
			for j := uint32(0); j < nd.b; j++ {
				ci := nd.a + j
				if g := growth[ci]; g > maxG {
					maxG = g
				}
				if v := visits[ci]; v > maxV {
					maxV = v
				}
			}
			growth[i] = maxG
			visits[i] = 1 + maxV
		default: // kindPartition
			k := int(nd.b)
			g := k // momentary occupancy right after pushing all children
			sum := 0
			// Children are pushed in order a..a+k-1 and popped LIFO, so the
			// child at offset j still has j siblings below it on the stack.
			for j := 0; j < k; j++ {
				ci := nd.a + uint32(j)
				if v := j + growth[ci]; v > g {
					g = v
				}
				sum += visits[ci]
			}
			growth[i] = g
			visits[i] = 1 + sum
		}
	}
	st.MaxStack = len(c.roots)
	for j, r := range c.roots {
		// Roots are pushed in order and popped LIFO, like partition children.
		if v := j + growth[r]; v > st.MaxStack {
			st.MaxStack = v
		}
		st.WorstCaseVisits += visits[r]
	}
	st.MemoryBytes = len(c.nodes)*nodeBytes +
		len(c.leafRules)*4 +
		len(c.cutDescs)*cutDescBytes +
		len(c.cutPoints)*8 +
		len(c.packed)*packedRuleBytes +
		len(c.roots)*4
	c.stats = st
}

// In-memory sizes used for the MemoryBytes accounting (kept in sync with
// the struct definitions above; padded sizes, pinned by TestNodeLayout).
const (
	nodeBytes       = 32
	cutDescBytes    = 24
	packedRuleBytes = 32
)

// nodeLineAlign is the byte alignment of the node slab: one cache line, so
// node pairs never straddle a line boundary.
const nodeLineAlign = 64

// alignNodeSlab copies nodes into a 64-byte-aligned backing array. Go slice
// allocations only guarantee the element alignment (8 bytes here), so the
// slab is carved out of an over-allocated byte buffer instead; the interior
// pointer keeps the buffer alive and node contains no pointers, so the cast
// is GC-safe.
func alignNodeSlab(nodes []node) []node {
	if len(nodes) == 0 {
		return nodes
	}
	buf := make([]byte, len(nodes)*nodeBytes+nodeLineAlign-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % nodeLineAlign; rem != 0 {
		off = int(nodeLineAlign - rem)
	}
	out := unsafe.Slice((*node)(unsafe.Pointer(&buf[off])), len(nodes))
	copy(out, nodes)
	return out
}

// deriveInline reconstructs the denormalized per-node fields (dim0, lo0,
// step0) from the cut-descriptor slab. Compile fills them directly; Load
// calls this after decoding, because the artifact stores only the canonical
// descriptor slab. It bounds-checks the descriptor span itself so it is safe
// on untrusted input ahead of full validation.
func (c *Classifier) deriveInline() error {
	for i := range c.nodes {
		nd := &c.nodes[i]
		if nd.kind != kindCut {
			continue
		}
		if nd.ndims == 0 || uint64(nd.cut)+uint64(nd.ndims) > uint64(len(c.cutDescs)) {
			return fmt.Errorf("node %d: cut descriptor span out of range", i)
		}
		d := &c.cutDescs[nd.cut]
		nd.dim0 = d.dim
		nd.lo0 = d.lo
		nd.step0 = normStep(d.step)
	}
	return nil
}

// normStep maps a zero cut step to MaxUint64 so the hot path can divide
// without a zero guard: packet field values fit 32 bits, so (v-lo)/MaxUint64
// is 0 whenever v > lo, which is exactly the piece a zero-step descriptor
// selects. Compile never emits a zero step (splitRange guarantees step >= 1),
// but Load accepts artifacts that do.
func normStep(step uint64) uint64 {
	if step == 0 {
		return ^uint64(0)
	}
	return step
}
