package compiled_test

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/core"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// buildAllBackendTrees extends the shared buildTrees harness with the
// learned backend, so the batch differential covers all 5 tree shapes. The
// trained tree is skipped in -short mode (training is the only expensive
// build).
func buildAllBackendTrees(t *testing.T, set *rule.Set) map[string][]*tree.Tree {
	t.Helper()
	out := buildTrees(t, set)
	if !testing.Short() {
		cfg := core.Scaled(1000)
		cfg.MaxTimesteps = 600
		cfg.BatchTimesteps = 256
		cfg.Workers = 2
		cfg.Seed = 42
		cfg.Partition = env.PartitionNone
		trainer := core.NewTrainer(set, cfg)
		if _, err := trainer.Train(); err != nil {
			t.Fatal(err)
		}
		nt, _ := trainer.BestTree()
		if nt == nil {
			t.Fatal("neurocuts training produced no tree")
		}
		out["neurocuts"] = []*tree.Tree{nt}
	}
	return out
}

// TestDifferentialLookupBatch is the grouped-traversal differential:
// LookupBatch must return byte-identical results to per-packet LookupIndex
// — and both must agree with reference linear search — over a 12k-packet
// sample, for every tree backend, at batch lengths straddling the group
// width (1, G-1, G, G+1, 3G+2) so lane refill, the sub-group scalar
// fallback and partially-filled groups are all crossed.
func TestDifferentialLookupBatch(t *testing.T) {
	const g = compiled.BatchGroup
	lengths := []int{1, g - 1, g, g + 1, 3*g + 2}

	total := 0
	grouped, fallback := 0, 0
	for _, family := range []string{"acl1", "fw1"} {
		fam, err := classbench.FamilyByName(family)
		if err != nil {
			t.Fatal(err)
		}
		set := classbench.Generate(fam, 250, 42)
		var packets []rule.Packet
		for _, e := range classbench.GenerateTrace(set, 5000, 43) {
			packets = append(packets, e.Key)
		}
		for _, e := range classbench.UniformTrace(set, 1000, 44) {
			packets = append(packets, e.Key)
		}
		total += len(packets)

		for backend, trees := range buildAllBackendTrees(t, set) {
			c, err := compiled.Compile(set, trees...)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", backend, family, err)
			}
			if c.BatchEligible() {
				grouped++
			} else {
				fallback++
			}
			// Scalar reference over the whole sample, checked against linear
			// search once; the batch runs below then compare against it.
			scalar := make([]int32, len(packets))
			for i, p := range packets {
				scalar[i] = int32(c.LookupIndex(p))
				want := int32(set.MatchIndex(p))
				if scalar[i] != want {
					t.Fatalf("%s/%s: packet %d: linear=%d scalar=%d",
						backend, family, i, want, scalar[i])
				}
			}
			out := make([]int32, len(packets))
			for _, n := range lengths {
				for i := range out {
					out[i] = -2 // poison: every slot must be written
				}
				for off := 0; off < len(packets); off += n {
					hi := off + n
					if hi > len(packets) {
						hi = len(packets)
					}
					c.LookupBatch(packets[off:hi], out[off:hi])
				}
				for i := range out {
					if out[i] != scalar[i] {
						t.Fatalf("%s/%s: batchlen %d: packet %d: scalar=%d batch=%d",
							backend, family, n, i, scalar[i], out[i])
					}
				}
			}
		}
	}
	if total < 12000 {
		t.Fatalf("sample too small: %d packets", total)
	}
	// The adaptive dispatch must leave both code paths covered: some built
	// forests deep enough to engage the grouped traversal, some shallow
	// enough to take the scalar fallback. If a threshold change collapses
	// either bucket to zero, this differential stops testing that path.
	if grouped == 0 || fallback == 0 {
		t.Fatalf("adaptive dispatch coverage lost: %d grouped, %d fallback forests", grouped, fallback)
	}
}

// TestLookupBatchDegenerate covers the paths a fuzzer of batch lengths
// would hit first: empty input, single packet (scalar fallback), and an
// out slice longer than ps (only the first len(ps) slots are written).
func TestLookupBatchDegenerate(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 100, 7)
	trees := buildTrees(t, set)["hicuts"]
	c, err := compiled.Compile(set, trees...)
	if err != nil {
		t.Fatal(err)
	}

	c.LookupBatch(nil, nil) // must not panic

	var ps []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 4, 8) {
		ps = append(ps, e.Key)
	}
	out := make([]int32, len(ps)+3)
	for i := range out {
		out[i] = -2
	}
	c.LookupBatch(ps[:1], out)
	if out[0] != int32(c.LookupIndex(ps[0])) {
		t.Fatalf("single-packet batch: got %d want %d", out[0], c.LookupIndex(ps[0]))
	}
	for i := 1; i < len(out); i++ {
		if out[i] != -2 {
			t.Fatalf("out[%d] written beyond len(ps)", i)
		}
	}
}

// BenchmarkLookupScalarVsBatch compares per-packet cost of the scalar and
// grouped paths on a mid-size compiled tree with a rule-directed trace —
// the quick local proxy for the perf lab's compiledbatch cell.
func BenchmarkLookupScalarVsBatch(b *testing.B) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		b.Fatal(err)
	}
	set := classbench.Generate(fam, 10000, 5)
	ht, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	c, err := compiled.Compile(set, ht)
	if err != nil {
		b.Fatal(err)
	}
	var ps []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 4096, 21) {
		ps = append(ps, e.Key)
	}
	out := make([]int32, len(ps))

	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range ps {
				out[j] = int32(c.LookupIndex(ps[j]))
			}
		}
		b.SetBytes(int64(len(ps)))
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.LookupBatch(ps, out)
		}
		b.SetBytes(int64(len(ps)))
	})
}
