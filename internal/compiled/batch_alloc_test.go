package compiled

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
)

// partitionChain hand-builds a classifier whose compile-time MaxStack
// exceeds lookupStackSize: a chain of nested partition nodes, each holding a
// leaf and the next partition, so traversal depth (and thus peak stack)
// grows by one per level. No real backend produces this shape — that is the
// point: it forces the overflow-stack path.
func partitionChain(t *testing.T, depth int) *Classifier {
	t.Helper()
	c := &Classifier{nodes: make([]node, 2*depth+1), roots: []uint32{0}}
	for i := 0; i < depth; i++ {
		c.nodes[2*i] = node{kind: kindPartition, a: uint32(2*i + 1), b: 2}
		c.nodes[2*i+1] = node{kind: kindLeaf}
	}
	c.nodes[2*depth] = node{kind: kindLeaf}
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	c.packed = packRules(c.rules)
	c.computeStats()
	if c.stats.MaxStack <= lookupStackSize {
		t.Fatalf("chain depth %d gives MaxStack %d, need > %d to exercise the overflow path",
			depth, c.stats.MaxStack, lookupStackSize)
	}
	return c
}

// TestLookupOverflowStackAllocFree is the regression test for the old
// per-call heap stack: classifiers whose MaxStack exceeds the fixed lane
// stack must still look up with zero allocations once the overflow freelist
// is warm — scalar and batch (which falls back to scalar here) alike.
func TestLookupOverflowStackAllocFree(t *testing.T) {
	c := partitionChain(t, 200)
	p := rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if got := c.LookupIndex(p); got != -1 {
		t.Fatalf("empty-rule chain matched %d", got)
	}
	allocs := testing.AllocsPerRun(200, func() { c.LookupIndex(p) })
	if allocs != 0 {
		t.Errorf("overflow LookupIndex allocates %.1f allocs/op, want 0", allocs)
	}

	ps := make([]rule.Packet, 32)
	out := make([]int32, len(ps))
	c.LookupBatch(ps, out)
	allocs = testing.AllocsPerRun(100, func() { c.LookupBatch(ps, out) })
	if allocs != 0 {
		t.Errorf("overflow LookupBatch allocates %.1f allocs/batch, want 0", allocs)
	}
}

// TestLookupBatchAllocFree asserts the grouped path itself — lanes, scratch,
// refill — is allocation-free on a real compiled tree once the scratch
// freelist is warm. This is the allocs gate the perf lab's batch cell
// depends on.
func TestLookupBatchAllocFree(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	// 2000 rules: deep enough that the forest clears batchMinVisits — a
	// smaller acl1 tree would silently route this gate through the scalar
	// fallback instead of the grouped machinery it exists to pin.
	set := classbench.Generate(fam, 2000, 9)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(set, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !c.BatchEligible() {
		t.Fatal("test tree not batch-eligible; grow the rule set so the grouped path is exercised")
	}
	var ps []rule.Packet
	for _, e := range classbench.GenerateTrace(set, 256, 17) {
		ps = append(ps, e.Key)
	}
	out := make([]int32, len(ps))
	c.LookupBatch(ps, out) // warm the scratch freelist
	allocs := testing.AllocsPerRun(100, func() { c.LookupBatch(ps, out) })
	if allocs != 0 {
		t.Errorf("LookupBatch allocates %.1f allocs/batch, want 0", allocs)
	}
}
