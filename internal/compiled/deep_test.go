package compiled

import (
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// visitDepth replays a full lookup traversal for p, returning the depth of
// the deepest leaf the lookup visits. It mirrors the real descent logic
// (cutPiece for equal cuts, boundary counting for custom cuts, all children
// for partitions) but follows every pending subtree instead of early-exiting
// on priority, so it measures the structural worst case the packet exposes.
func visitDepth(c *Classifier, depth []int32, p rule.Packet) int32 {
	var vals [rule.NumDims]uint64
	vals[rule.DimSrcIP] = uint64(p.SrcIP)
	vals[rule.DimDstIP] = uint64(p.DstIP)
	vals[rule.DimSrcPort] = uint64(p.SrcPort)
	vals[rule.DimDstPort] = uint64(p.DstPort)
	vals[rule.DimProto] = uint64(p.Proto)

	deepest := int32(-1)
	stack := append([]uint32(nil), c.roots...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for {
			nd := &c.nodes[cur]
			switch nd.kind {
			case kindCut:
				idx := uint32(0)
				for k := uint32(0); k < uint32(nd.ndims); k++ {
					d := &c.cutDescs[nd.cut+k]
					idx = idx*d.count + cutPiece(vals[d.dim], d.lo, normStep(d.step), d.count)
				}
				cur = nd.a + idx
				continue
			case kindCustomCut:
				v := vals[nd.ndims]
				n := uint32(0)
				for _, pt := range c.cutPoints[nd.cut : nd.cut+nd.b-1] {
					if pt <= v {
						n++
					}
				}
				cur = nd.a + n
				continue
			case kindLeaf:
				if depth[cur] > deepest {
					deepest = depth[cur]
				}
			default: // kindPartition
				for j := uint32(0); j < nd.b; j++ {
					stack = append(stack, nd.a+j)
				}
			}
			break
		}
	}
	return deepest
}

// TestWorstCaseDepthPackets: every synthesized packet must descend to a leaf
// at the tree's maximum depth — that is the generator's whole contract — on
// both a single-root equal-cut tree (hicuts) and a multi-root tree with
// custom cuts (cutsplit). Same seed, same packets.
func TestWorstCaseDepthPackets(t *testing.T) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	set := classbench.Generate(fam, 500, 11)

	builds := map[string][]*tree.Tree{}
	ht, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	builds["hicuts"] = []*tree.Tree{ht}
	cs, err := cutsplit.Build(set, cutsplit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	builds["cutsplit"] = cs.Trees

	for backend, trees := range builds {
		c, err := Compile(set, trees...)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		_, depth := c.walkDepths()
		maxDepth := int32(0)
		for i := range c.nodes {
			if c.nodes[i].kind == kindLeaf && depth[i] > maxDepth {
				maxDepth = depth[i]
			}
		}
		if maxDepth == 0 {
			t.Fatalf("%s: degenerate tree (max leaf depth 0)", backend)
		}

		ps := c.WorstCaseDepthPackets(200, 1)
		if len(ps) != 200 {
			t.Fatalf("%s: got %d packets, want 200", backend, len(ps))
		}
		for i, p := range ps {
			if got := visitDepth(c, depth, p); got != maxDepth {
				t.Fatalf("%s: packet %d reaches depth %d, tree max is %d",
					backend, i, got, maxDepth)
			}
		}

		if ps2 := c.WorstCaseDepthPackets(200, 1); len(ps2) != len(ps) || ps2[0] != ps[0] || ps2[199] != ps[199] {
			t.Errorf("%s: generation not deterministic in seed", backend)
		}

		// The classbench wrapper gives the packets trace ground truth.
		trace := classbench.WorstCaseTrace(set, ps[:16])
		for i, e := range trace {
			if e.Key != ps[i] {
				t.Fatalf("trace entry %d key mismatch", i)
			}
			if e.MatchRule != set.MatchIndex(e.Key) {
				t.Fatalf("trace entry %d ground truth mismatch", i)
			}
		}
	}

	if got := (&Classifier{}).WorstCaseDepthPackets(8, 1); got != nil {
		t.Errorf("empty classifier should yield nil, got %d packets", len(got))
	}
}
