package compiled_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/rule"
)

// fixChecksum rewrites the artifact's CRC trailer so structural mutations
// reach the validators instead of dying at the corruption check.
func fixChecksum(artifact []byte) {
	if len(artifact) < 4 {
		return
	}
	body := artifact[:len(artifact)-4]
	binary.LittleEndian.PutUint32(artifact[len(artifact)-4:], crc32.ChecksumIEEE(body))
}

// FuzzLoad drives compiled.LoadBytes with arbitrary bytes: it must either
// return an error or return a classifier whose lookups cannot panic.
// Truncations, bit flips, version skews and checksum-repaired structural
// mutations are all seeded so the fuzzer starts at the interesting paths.
func FuzzLoad(f *testing.F) {
	fam, err := classbench.FamilyByName("acl1")
	if err != nil {
		f.Fatal(err)
	}
	set := classbench.Generate(fam, 60, 1)
	tr, err := hicuts.Build(set, hicuts.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	c, err := compiled.Compile(set, tr)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compiled.Save(&buf, c, compiled.Metadata{Backend: "hicuts", Rules: set.Len()}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("NCAF"))
	for _, n := range []int{8, 16, 40, len(valid) / 3, len(valid) - 5} {
		if n > 0 && n < len(valid) {
			f.Add(append([]byte(nil), valid[:n]...))
		}
	}
	// Version skew with a repaired checksum.
	skew := append([]byte(nil), valid...)
	skew[4] = 0x63
	fixChecksum(skew)
	f.Add(skew)
	// Structural mutations with repaired checksums: these must be caught by
	// the invariant validators, not the CRC.
	for off := 16; off < len(valid)-4; off += 13 {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xff
		fixChecksum(mut)
		f.Add(mut)
	}

	probes := []rule.Packet{
		{},
		{SrcIP: ^uint32(0), DstIP: ^uint32(0), SrcPort: ^uint16(0), DstPort: ^uint16(0), Proto: ^uint8(0)},
		{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: 6},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, _, err := compiled.LoadBytes(data)
		if err != nil {
			return
		}
		// A classifier that passed validation must serve lookups safely.
		for _, p := range probes {
			c.Lookup(p)
			c.LookupIndex(p)
		}
		_ = c.Stats()
		_ = c.RuleSet()
	})
}
