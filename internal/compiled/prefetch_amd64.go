//go:build amd64

package compiled

import "unsafe"

// prefetchT0 issues a PREFETCHT0 hint for the cache line containing p, so
// the line is (speculatively) in flight by the time the grouped traversal
// returns to this lane. It is advisory: the CPU may drop it, and a wrong
// address costs nothing, which is why the batch stepper can prefetch a
// child node before knowing whether the lane will survive that deep.
//
//go:noescape
func prefetchT0(p unsafe.Pointer)
