package compiled

import (
	"math"
	"unsafe"

	"neurocuts/internal/rule"
)

// batchGroup is G: the number of packets advanced in lockstep by
// LookupBatch. Each round issues one traversal step per live lane and a
// prefetch for that lane's next node, so up to G node-line fills are in
// flight at once and each lane's dependent-load latency is hidden behind
// the other lanes' compute. Benchmarked against 4 and 16 on the 10k-rule
// cells (BenchmarkLookupScalarVsBatch): 8 edges out 4 and matches 16 while
// keeping the scratch footprint — dominated by the G fixed-size lane stacks
// — at half of 16's.
const batchGroup = 8

// batchMinLen is the shortest batch worth the grouped machinery; below it
// LookupBatch degrades to the scalar path.
const batchMinLen = 2

// batchMinVisits is the adaptive-dispatch threshold: the grouped traversal
// engages only when the compile-time worst-case lookup visits at least this
// many nodes. The interleave earns its keep by keeping up to G node-line
// fills in flight across lanes; a forest whose longest chain is shorter than
// the group width (fw1-shaped rule sets compile to a handful of L1-resident
// nodes) never accumulates that overlap, and the lane bookkeeping becomes
// pure overhead over the scalar loop — measured ~0.8x on the 10k-rule fw1
// cell before this gate existed. WorstCaseVisits is computed by both Compile
// and Load, so the artifact format is unaffected.
const batchMinVisits = batchGroup

// BatchEligible reports whether LookupBatch will use the grouped interleaved
// traversal for this classifier, or fall back to per-packet scalar lookups
// (shallow cache-resident forests, or a worst-case traversal stack beyond
// the fixed lane stacks). The perf lab reports it so the compiledbatch gate
// can tell a measured grouped win from an adaptive fallback.
func (c *Classifier) BatchEligible() bool {
	return len(c.roots) > 0 &&
		c.stats.MaxStack <= lookupStackSize &&
		c.stats.WorstCaseVisits >= batchMinVisits
}

// BatchGroup exports G for callers sizing batches to group boundaries and
// for the differential tests probing lengths around them.
const BatchGroup = batchGroup

// batchScratch is the per-call traversal state of up to batchGroup in-flight
// packets, kept as struct-of-arrays so each round's inner loop walks small
// dense arrays. It is pooled: a LookupBatch call allocates nothing after the
// pool has warmed.
type batchScratch struct {
	// vals caches each lane's packet fields widened to uint64, indexed by
	// rule.Dimension, replacing the per-step Field switch with one load.
	vals [batchGroup][rule.NumDims]uint64
	// pkt is the lane's packet in native widths, for the leaf match scan.
	pkt [batchGroup]rule.Packet
	// cur is the lane's current node index.
	cur [batchGroup]uint32
	// oidx is where the lane's result lands in the caller's out slice.
	oidx [batchGroup]int32
	// best/bestPrio track the lane's best match so far (-1 / MaxInt32).
	best     [batchGroup]int32
	bestPrio [batchGroup]int32
	// sp/stack hold the lane's pending subtree roots (partition children and
	// multi-tree roots), exactly like the scalar traversal stack.
	sp   [batchGroup]int32
	live [batchGroup]bool
	// scanning/scanPos carry a partially-scanned leaf across rounds: long
	// leaf spans are consumed leafScanChunk rules per step so their
	// packed-rule misses overlap across lanes instead of stalling one round
	// per leaf (see laneLeaf).
	scanning [batchGroup]bool
	scanPos  [batchGroup]uint32
	stack    [batchGroup][lookupStackSize]uint32
}

// batchScratches is a fixed-capacity freelist of traversal scratches. A
// buffered channel rather than sync.Pool: Pool deliberately drops a fraction
// of Puts under the race detector, which would turn the batch path's
// steady-state 0 allocs/op into a probabilistic property exactly where CI
// measures it (the engine alloc gates run under -race). The freelist is
// deterministic in both build modes; if more batches than its capacity are
// ever in flight at once the extras simply allocate.
var batchScratches = make(chan *batchScratch, 64)

func getBatchScratch() *batchScratch {
	select {
	case s := <-batchScratches:
		return s
	default:
		return new(batchScratch)
	}
}

func putBatchScratch(s *batchScratch) {
	select {
	case batchScratches <- s:
	default:
	}
}

// LookupBatch classifies every packet of ps, writing each packet's best rule
// index (into Rules()) or -1 to the corresponding out element. It is the
// grouped counterpart of LookupIndex: packets advance through the node slab
// in an interleaved group of batchGroup lanes, a finished lane immediately
// refills from the remaining packets, and every lane advance prefetches the
// lane's next node. Results are identical to per-packet LookupIndex calls
// (the lanes replicate the scalar traversal order exactly), allocation-free
// once the scratch pool is warm, and safe for concurrent use.
//
// Batches shorter than batchMinLen and classifiers that are not
// BatchEligible (shallow forests below batchMinVisits, or a compile-time
// MaxStack beyond the fixed lane stacks) fall back to the scalar path.
func (c *Classifier) LookupBatch(ps []rule.Packet, out []int32) {
	out = out[:len(ps)]
	if len(ps) < batchMinLen || !c.BatchEligible() {
		for i := range ps {
			out[i] = int32(c.LookupIndex(ps[i]))
		}
		return
	}
	s := getBatchScratch()
	next, active := 0, 0
	for l := 0; l < batchGroup && next < len(ps); l++ {
		c.initLane(s, l, ps[next], int32(next))
		next++
		active++
	}
	for active > 0 {
		for l := 0; l < batchGroup; l++ {
			if !s.live[l] {
				continue
			}
			if !laneSteps[c.nodes[s.cur[l]].kind](c, s, l) {
				continue
			}
			// The lane finished its packet: retire the result and refill.
			out[s.oidx[l]] = s.best[l]
			if next < len(ps) {
				c.initLane(s, l, ps[next], int32(next))
				next++
			} else {
				s.live[l] = false
				active--
			}
		}
	}
	putBatchScratch(s)
}

// initLane points lane l at packet p: fields widened, best match cleared,
// all per-tree roots staged (the last root becomes the current node, the
// rest wait on the lane stack — the same LIFO order the scalar path uses).
func (c *Classifier) initLane(s *batchScratch, l int, p rule.Packet, oidx int32) {
	s.pkt[l] = p
	s.vals[l][rule.DimSrcIP] = uint64(p.SrcIP)
	s.vals[l][rule.DimDstIP] = uint64(p.DstIP)
	s.vals[l][rule.DimSrcPort] = uint64(p.SrcPort)
	s.vals[l][rule.DimDstPort] = uint64(p.DstPort)
	s.vals[l][rule.DimProto] = uint64(p.Proto)
	s.oidx[l] = oidx
	s.best[l] = -1
	s.bestPrio[l] = math.MaxInt32
	s.live[l] = true
	s.scanning[l] = false
	// MaxStack <= lookupStackSize (checked by LookupBatch) bounds the root
	// count too, so the copy always fits.
	n := copy(s.stack[l][:], c.roots)
	s.sp[l] = int32(n - 1)
	cur := s.stack[l][n-1]
	s.cur[l] = cur
	prefetchT0(unsafe.Pointer(&c.nodes[cur]))
}

// laneSteps dispatches one traversal step by node kind. The batch stepper
// indexes straight into this table with the node's kind byte instead of
// re-predicting a switch per lane per round; each handler is a small flat
// function that advances the lane by exactly one node and reports whether
// the lane's packet is finished.
var laneSteps = [kindMax + 1]func(*Classifier, *batchScratch, int) bool{
	kindLeaf:      laneLeaf,
	kindCut:       laneCut,
	kindCustomCut: laneCustomCut,
	kindPartition: lanePartition,
}

// laneCut descends one equal-cut node: single-dimension cuts (the common
// case) dispatch branch-free from the node's inline descriptor, touching
// only the node's own cache line; multi-dimension cuts fold every
// dimension's piece over the descriptor slab exactly like the scalar path.
func laneCut(c *Classifier, s *batchScratch, l int) bool {
	nd := &c.nodes[s.cur[l]]
	var child uint32
	if nd.ndims == 1 {
		child = nd.a + cutPiece(s.vals[l][nd.dim0], nd.lo0, nd.step0, nd.b)
	} else {
		idx := uint32(0)
		base := nd.cut
		for k := uint32(0); k < uint32(nd.ndims); k++ {
			d := &c.cutDescs[base+k]
			v := s.vals[l][d.dim]
			var piece uint32
			if v > d.lo && d.step > 0 {
				piece = uint32((v - d.lo) / d.step)
				if piece >= d.count {
					piece = d.count - 1
				}
			}
			idx = idx*d.count + piece
		}
		child = nd.a + idx
	}
	s.cur[l] = child
	prefetchT0(unsafe.Pointer(&c.nodes[child]))
	return false
}

// laneCustomCut descends one equi-dense cut node by binary search over its
// boundary points (child index = number of boundaries <= v).
func laneCustomCut(c *Classifier, s *batchScratch, l int) bool {
	nd := &c.nodes[s.cur[l]]
	v := s.vals[l][nd.ndims]
	pts := c.cutPoints[nd.cut : nd.cut+nd.b-1]
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	child := nd.a + uint32(lo)
	s.cur[l] = child
	prefetchT0(unsafe.Pointer(&c.nodes[child]))
	return false
}

// leafScanChunk is how many leaf rules one lane step consumes. Short spans
// (the common case — binth-sized leaves) still finish in their first visit
// with no extra dispatch; longer spans yield after each chunk with the next
// chunk's packed-rule line prefetched, so heavyweight leaf scans overlap
// across lanes instead of each stalling a whole round.
const leafScanChunk = 8

// laneLeaf scans (a chunk of) the leaf's priority-sorted rule span against
// the lane's packet, then either yields with the rest of the span pending,
// pops the lane's next subtree, or reports the lane done.
func laneLeaf(c *Classifier, s *batchScratch, l int) bool {
	nd := &c.nodes[s.cur[l]]
	end := nd.a + nd.b
	i := nd.a
	if s.scanning[l] {
		i = s.scanPos[l]
	}
	chunkEnd := i + leafScanChunk
	if chunkEnd > end {
		chunkEnd = end
	}
	p := s.pkt[l]
	bestPrio := s.bestPrio[l]
	for ; i < chunkEnd; i++ {
		ri := c.leafRules[i]
		r := &c.packed[ri]
		if r.prio >= bestPrio {
			// Priority-sorted span: nothing later can improve the best.
			i = end
			break
		}
		if p.SrcIP < r.srcLo || p.SrcIP > r.srcHi ||
			p.DstIP < r.dstLo || p.DstIP > r.dstHi ||
			p.SrcPort < r.spLo || p.SrcPort > r.spHi ||
			p.DstPort < r.dpLo || p.DstPort > r.dpHi ||
			p.Proto < r.prLo || p.Proto > r.prHi {
			continue
		}
		s.best[l] = int32(ri)
		s.bestPrio[l] = r.prio
		i = end
		break
	}
	if i < end {
		// More span left: remember the position and get the next chunk's
		// rule lines in flight while other lanes run.
		s.scanning[l] = true
		s.scanPos[l] = i
		prefetchT0(unsafe.Pointer(&c.packed[c.leafRules[i]]))
		if i+2 < end {
			prefetchT0(unsafe.Pointer(&c.packed[c.leafRules[i+2]]))
		}
		return false
	}
	s.scanning[l] = false
	sp := s.sp[l]
	if sp == 0 {
		return true
	}
	sp--
	s.sp[l] = sp
	cur := s.stack[l][sp]
	s.cur[l] = cur
	prefetchT0(unsafe.Pointer(&c.nodes[cur]))
	return false
}

// lanePartition stages a partition node's children: the last child becomes
// the lane's current node and the rest are pushed, giving the identical
// LIFO visit order to the scalar path (which pushes all b children and pops
// the last first). The lane stack never exceeds the scalar MaxStack bound
// because one staged child rides in cur instead of on the stack.
func lanePartition(c *Classifier, s *batchScratch, l int) bool {
	nd := &c.nodes[s.cur[l]]
	sp := s.sp[l]
	for j := uint32(0); j+1 < nd.b; j++ {
		s.stack[l][sp] = nd.a + j
		sp++
	}
	s.sp[l] = sp
	cur := nd.a + nd.b - 1
	s.cur[l] = cur
	prefetchT0(unsafe.Pointer(&c.nodes[cur]))
	return false
}
