// Package perf is the repository's perf lab: a reproducible scenario-matrix
// benchmark runner with machine-readable results.
//
// The paper's evaluation — and this repo's regression story — is a grid of
// workloads: ClassBench family x rule-set size x traffic skew x update churn
// x backend. perf expands such a declarative Grid into cells, measures each
// cell (build time, p50/p99 lookup latency, throughput, memory, allocations
// per op) and packages the results as a schema-versioned Report that
// marshals to JSON. Compare diffs two reports with configurable regression
// thresholds; cmd/perflab and the CI bench gate are thin shells over this
// package, and internal/bench renders its text tables from the same data.
//
// Determinism: rule sets, traces and therefore every structural metric
// (rules, memory, lookup cost, entries) are pure functions of the seed.
// Timing fields (build/latency/throughput) vary run to run and machine to
// machine; Canonical zeroes them so reports can be diffed and golden-tested.
package perf

import (
	"fmt"
	"sort"

	"neurocuts/internal/engine"
)

// SchemaVersion identifies the Report JSON schema. Bump on any
// backwards-incompatible field change; ReadArtifact refuses versions it
// does not know how to read (older versions it can upgrade in place are
// accepted — see MinReadSchemaVersion).
//
// v2 added update_p50_ns / update_p99_ns (update-path latency percentiles)
// and the "updateheavy" churn mode. v1 reports parse cleanly with those
// fields zero, so they remain readable.
const SchemaVersion = 2

// MinReadSchemaVersion is the oldest report schema ReadArtifact still
// accepts. v1 reports lack the update-latency fields; Compare skips metrics
// whose baseline value is absent (zero), so comparisons against v1
// baselines stay meaningful.
const MinReadSchemaVersion = 1

// Skew selects the traffic model of a cell.
type Skew string

const (
	// SkewUniform draws packets uniformly from the whole header space.
	SkewUniform Skew = "uniform"
	// SkewZipf draws packets from a fixed flow population with
	// Zipf-distributed popularity (few flows carry most packets).
	SkewZipf Skew = "zipf"
)

// LookupMode selects which serving representation a cell measures for tree
// backends. The empty value means "the default" (compiled) and keeps the
// cell's canonical name — and therefore the committed CI baseline —
// unchanged from before the axis existed.
type LookupMode string

const (
	// LookupCompiled serves from the compiled flat-array form (the default
	// serve path; named explicitly when comparing against legacy).
	LookupCompiled LookupMode = "compiled"
	// LookupLegacy serves from the build-time pointer-linked tree.
	LookupLegacy LookupMode = "legacy"
)

// Churn selects the update model of a cell.
type Churn string

const (
	// ChurnNone measures a read-only classifier.
	ChurnNone Churn = "readonly"
	// ChurnUpdates measures lookups while a writer continuously inserts and
	// deletes rules through the engine's rebuild-per-update snapshot swap.
	ChurnUpdates Churn = "churn"
	// ChurnHeavy measures an update-heavy workload against an engine with
	// the delta-overlay update subsystem enabled: the writer churns with
	// minimal pacing and updates flow through the overlay write path rather
	// than a rebuild. Update latency percentiles (update_p50_ns /
	// update_p99_ns) are first-class metrics of these cells.
	ChurnHeavy Churn = "updateheavy"
)

// Grid is the declarative scenario matrix: its cells are the cross product
// of all five axes.
type Grid struct {
	Families []string `json:"families"`
	Sizes    []int    `json:"sizes"`
	Skews    []Skew   `json:"skews"`
	Churns   []Churn  `json:"churns"`
	Backends []string `json:"backends"`
	// Lookups is the optional serving-representation axis for tree
	// backends (compiled vs legacy pointer tree). Empty means one default
	// (compiled) cell per point, with unchanged canonical names.
	Lookups []LookupMode `json:"lookups,omitempty"`
}

// Cells expands the grid into the full cross product, in deterministic
// (family, size, skew, churn, backend, lookup) order.
func (g Grid) Cells() []Cell {
	lookups := g.Lookups
	if len(lookups) == 0 {
		lookups = []LookupMode{""}
	}
	var out []Cell
	for _, f := range g.Families {
		for _, s := range g.Sizes {
			for _, sk := range g.Skews {
				for _, ch := range g.Churns {
					for _, b := range g.Backends {
						for _, lk := range lookups {
							out = append(out, Cell{Family: f, Size: s, Skew: sk, Churn: ch, Backend: b, Lookup: lk})
						}
					}
				}
			}
		}
	}
	return out
}

// Cell identifies one point of the scenario matrix.
type Cell struct {
	Family  string `json:"family"`
	Size    int    `json:"size"`
	Skew    Skew   `json:"skew"`
	Churn   Churn  `json:"churn"`
	Backend string `json:"backend"`
	// Lookup distinguishes compiled vs legacy serving for tree backends;
	// empty means the default (compiled).
	Lookup LookupMode `json:"lookup,omitempty"`
}

// Name returns the scenario's canonical name, e.g. "acl1_1k_zipf_churn_tss".
// It is the key Compare matches cells on and the stem of per-cell artifact
// files.
func (c Cell) Name() string {
	size := fmt.Sprintf("%d", c.Size)
	if c.Size >= 1000 && c.Size%1000 == 0 {
		size = fmt.Sprintf("%dk", c.Size/1000)
	}
	name := fmt.Sprintf("%s_%s_%s_%s_%s", c.Family, size, c.Skew, c.Churn, c.Backend)
	if c.Lookup != "" {
		name += "_" + string(c.Lookup)
	}
	return name
}

// CellMetrics is the measurement of one cell. Structural fields (Rules,
// MemoryBytes, LookupCost, Entries) are deterministic given the seed; the
// rest are wall-clock measurements.
type CellMetrics struct {
	// BuildNanos is the wall-clock time to construct the backend.
	BuildNanos int64 `json:"build_nanos"`
	// P50Nanos / P99Nanos are single-packet lookup latency percentiles.
	P50Nanos float64 `json:"p50_nanos"`
	P99Nanos float64 `json:"p99_nanos"`
	// ThroughputPPS is batched-lookup throughput in packets per second.
	ThroughputPPS float64 `json:"throughput_pps"`
	// AllocsPerOp is heap allocations per single-packet lookup, measured on
	// the read-only path (before any churn writer starts).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MemoryBytes is the backend's modelled memory footprint.
	MemoryBytes int `json:"memory_bytes"`
	// LookupCost is the backend's worst-case sequential lookup cost.
	LookupCost int `json:"lookup_cost"`
	// Entries is the number of stored elements after expansion/replication.
	Entries int `json:"entries"`
	// Rules is the classifier size.
	Rules int `json:"rules"`
	// Updates is the number of rule updates applied by the churn writer
	// during measurement (0 for readonly cells).
	Updates int `json:"updates"`
	// UpdateP50Nanos / UpdateP99Nanos are update-path latency percentiles
	// (one sample per Insert or Delete call), 0 for readonly cells and in
	// schema-v1 reports. Added in schema v2.
	UpdateP50Nanos float64 `json:"update_p50_ns,omitempty"`
	UpdateP99Nanos float64 `json:"update_p99_ns,omitempty"`
	// CacheHitRate is the flow-cache hit fraction in [0,1], or 0 when the
	// cache is disabled.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// CellResult pairs a cell with its measurement.
type CellResult struct {
	Cell    Cell        `json:"cell"`
	Metrics CellMetrics `json:"metrics"`
}

// RunConfig fixes everything about a run that is not a grid axis, so two
// runs with equal configs are comparable.
type RunConfig struct {
	// Seed drives rule generation, traces and churn, making structural
	// results reproducible.
	Seed int64 `json:"seed"`
	// Packets is the trace length per cell.
	Packets int `json:"packets"`
	// Ops is the number of measured lookups per cell (latency, allocation
	// and throughput loops each run Ops lookups).
	Ops int `json:"ops"`
	// Runs is the number of measurement passes per cell; the reported
	// latency is the per-percentile minimum and the throughput the maximum
	// across passes. Taking the best-of-N filters one-sided scheduler and
	// interference noise, which is what a regression gate needs — a real
	// regression slows every pass. 0 selects 1.
	Runs int `json:"runs"`
	// Warmup is the number of unmeasured lookups before measurement.
	Warmup int `json:"warmup"`
	// Flows is the Zipf flow-population size for SkewZipf cells.
	Flows int `json:"flows"`
	// ZipfSkew is the Zipf s parameter (>1) for SkewZipf cells.
	ZipfSkew float64 `json:"zipf_skew"`
	// BatchSize is the ClassifyBatch size of the throughput loop.
	BatchSize int `json:"batch_size"`
	// Shards is the engine shard count (0 = GOMAXPROCS).
	Shards int `json:"shards"`
	// FlowCacheEntries enables the engine flow cache when > 0.
	FlowCacheEntries int `json:"flow_cache_entries"`
	// Binth is the leaf threshold for tree backends (0 = default).
	Binth int `json:"binth"`
	// OnEngine, when set, receives each cell's engine right after it is
	// built, before measurement — the hook perflab's -admin plane uses to
	// expose the engine currently under measurement. It is an observer, not
	// part of the comparable configuration, so it stays out of the JSON
	// artifact.
	OnEngine func(cellName string, eng *engine.Engine) `json:"-"`
}

// WithDefaults fills zero fields with CI-friendly defaults.
func (c RunConfig) WithDefaults() RunConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Packets <= 0 {
		c.Packets = 4096
	}
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.Warmup <= 0 {
		c.Warmup = 2000
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.Flows <= 0 {
		c.Flows = 256
	}
	if c.ZipfSkew <= 1 {
		c.ZipfSkew = 1.2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	return c
}

// Report is the versioned artifact of one perf run.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Tool          string       `json:"tool"`
	Grid          Grid         `json:"grid"`
	Config        RunConfig    `json:"config"`
	Cells         []CellResult `json:"cells"`
}

// Canonical returns a copy of the report with every machine- and run-varying
// field zeroed, leaving only the fields that are pure functions of the seed.
// Canonical output is what golden tests and textual diffs should compare.
func (r Report) Canonical() Report {
	out := r
	out.Cells = make([]CellResult, len(r.Cells))
	copy(out.Cells, r.Cells)
	for i := range out.Cells {
		m := &out.Cells[i].Metrics
		m.BuildNanos = 0
		m.P50Nanos = 0
		m.P99Nanos = 0
		m.ThroughputPPS = 0
		m.AllocsPerOp = 0
		m.Updates = 0
		m.UpdateP50Nanos = 0
		m.UpdateP99Nanos = 0
		m.CacheHitRate = 0
	}
	return out
}

// CellByName returns the named cell's result.
func (r Report) CellByName(name string) (CellResult, bool) {
	for _, c := range r.Cells {
		if c.Cell.Name() == name {
			return c, true
		}
	}
	return CellResult{}, false
}

// SortCells orders the report's cells by canonical name, the order Compare
// and the renderers expect.
func (r *Report) SortCells() {
	sort.Slice(r.Cells, func(i, j int) bool {
		return r.Cells[i].Cell.Name() < r.Cells[j].Cell.Name()
	})
}

// CIGrid returns the pinned scenario grid the CI bench gate runs: 3 families
// x 1 size x 2 skews x 3 churn modes (including the update-heavy overlay
// cells) x 2 allocation-free backends = 36 cells, small enough to finish in
// seconds yet covering every axis.
func CIGrid() Grid {
	return Grid{
		Families: []string{"acl1", "fw1", "ipc1"},
		Sizes:    []int{300},
		Skews:    []Skew{SkewUniform, SkewZipf},
		Churns:   []Churn{ChurnNone, ChurnUpdates, ChurnHeavy},
		Backends: []string{"linear", "tss"},
	}
}

// CIConfig returns the pinned run configuration of the CI bench gate.
func CIConfig() RunConfig {
	return RunConfig{Seed: 1, Packets: 2048, Ops: 10000, Warmup: 1000, Runs: 3,
		Flows: 128, ZipfSkew: 1.2, BatchSize: 256, Shards: 2}.WithDefaults()
}

// CompiledGrid returns the pinned grid of the compiled-vs-legacy lookup
// comparison: every tree backend, read-only uniform traffic, one cell per
// serving representation. CI runs it and asserts (via CheckCompiledWins)
// that the compiled flat-array lookup is never slower at the median than
// the pointer tree it replaced.
func CompiledGrid() Grid {
	return Grid{
		Families: []string{"acl1"},
		Sizes:    []int{300},
		Skews:    []Skew{SkewUniform},
		Churns:   []Churn{ChurnNone},
		Backends: []string{"hicuts", "hypercuts", "efficuts", "cutsplit"},
		Lookups:  []LookupMode{LookupCompiled, LookupLegacy},
	}
}
