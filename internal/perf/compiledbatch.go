package perf

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/compiled"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

// CompiledBatchComparison is the outcome of the compiledbatch perf cell: the
// same trace classified through the compiled form's scalar per-packet lookup
// (LookupIndex) and through the grouped interleaved traversal (LookupBatch),
// on one tree backend at serving scale. The gated quantity is batch latency
// at the median: the grouped path's claim is that overlapping G packets'
// node fetches hides the per-node dependent-load latency, and that shows up
// as a lower per-batch p50 on trees deep enough for the memory stalls to
// dominate.
type CompiledBatchComparison struct {
	Family  string `json:"family"`
	Size    int    `json:"size"`
	Backend string `json:"backend"`
	// Group is the grouped path's lane width (compiled.BatchGroup).
	Group int `json:"group"`
	// Grouped records whether the adaptive dispatch engaged the interleaved
	// traversal for this forest. Shallow cache-resident forests (fw1-shaped
	// sets compile to a handful of nodes) fall back to scalar inside
	// LookupBatch; for those the gate asserts no-regression rather than a
	// win, since both paths run the same code modulo one predicate.
	Grouped bool `json:"grouped"`
	// Batches and BatchSize describe the measured workload: Batches windows
	// of BatchSize packets per pass.
	Batches   int `json:"batches"`
	BatchSize int `json:"batch_size"`
	// ZipfPackets and WorstDepthPackets are the trace composition: a skewed
	// rule-directed half and an adversarial half steered to the tree's
	// deepest leaves (the longest dependent-load chains).
	ZipfPackets       int `json:"zipf_packets"`
	WorstDepthPackets int `json:"worst_depth_packets"`
	// Per-batch latency percentiles, nanoseconds, from the best pass.
	ScalarP50Nanos float64 `json:"scalar_p50_nanos"`
	ScalarP99Nanos float64 `json:"scalar_p99_nanos"`
	BatchP50Nanos  float64 `json:"batch_p50_nanos"`
	BatchP99Nanos  float64 `json:"batch_p99_nanos"`
	// Aggregate throughput, packets per second, best pass.
	ScalarPacketsPerSec float64 `json:"scalar_packets_per_sec"`
	BatchPacketsPerSec  float64 `json:"batch_packets_per_sec"`
	// Factor is ScalarP50Nanos / BatchP50Nanos: above 1, the grouped
	// traversal beats per-packet lookups at the median.
	Factor float64 `json:"factor"`
}

// compiledBatchSink defeats dead-code elimination of the scalar loop.
var compiledBatchSink int

// MeasureCompiledBatch builds one tree backend over a generated rule set,
// compiles it, and classifies the same mixed trace — half Zipf-skewed
// rule-directed traffic, half worst-case-depth packets steered to the
// deepest leaves — through the scalar and the grouped compiled lookup,
// measuring per-batch latency (best of `runs` passes per path).
func MeasureCompiledBatch(family string, size int, backend string, batches, batchSize, runs int, cfg RunConfig) (CompiledBatchComparison, error) {
	cfg = cfg.WithDefaults()
	if batches <= 0 {
		batches = 96
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	if runs <= 0 {
		runs = 3
	}
	res := CompiledBatchComparison{
		Family: family, Size: size, Backend: backend,
		Group: compiled.BatchGroup, Batches: batches, BatchSize: batchSize,
	}

	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return res, err
	}
	set := classbench.Generate(fam, size, cfg.Seed)
	c, err := buildCompiledBackend(backend, set, cfg.Binth)
	if err != nil {
		return res, err
	}
	res.Grouped = c.BatchEligible()

	// Trace: a flow-skewed half (the cache-miss traffic a serving path
	// actually batches) and a worst-depth half (every packet rides a
	// maximum-length node chain), shuffled together deterministically.
	total := batches * batchSize
	zipfN := total / 2
	worstN := total - zipfN
	var entries []packet.TraceEntry
	entries = append(entries, classbench.ZipfTrace(set, zipfN, cfg.Flows, cfg.ZipfSkew, cfg.Seed+7)...)
	worst := c.WorstCaseDepthPackets(worstN, cfg.Seed+13)
	entries = append(entries, classbench.WorstCaseTrace(set, worst)...)
	res.ZipfPackets, res.WorstDepthPackets = zipfN, len(worst)
	rng := rand.New(rand.NewSource(cfg.Seed + 29))
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	keys := make([]rule.Packet, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}

	out := make([]int32, batchSize)
	scalarLats, scalarPPS := measureCompiledPasses(keys, batches, batchSize, runs, func(ps []rule.Packet) {
		s := 0
		for i := range ps {
			s += c.LookupIndex(ps[i])
		}
		compiledBatchSink = s
	})
	batchLats, batchPPS := measureCompiledPasses(keys, batches, batchSize, runs, func(ps []rule.Packet) {
		c.LookupBatch(ps, out[:len(ps)])
	})

	res.ScalarP50Nanos = percentile(scalarLats, 0.50)
	res.ScalarP99Nanos = percentile(scalarLats, 0.99)
	res.BatchP50Nanos = percentile(batchLats, 0.50)
	res.BatchP99Nanos = percentile(batchLats, 0.99)
	res.ScalarPacketsPerSec = scalarPPS
	res.BatchPacketsPerSec = batchPPS
	if res.BatchP50Nanos > 0 {
		res.Factor = res.ScalarP50Nanos / res.BatchP50Nanos
	}
	return res, nil
}

// buildCompiledBackend builds the named tree backend over the set and
// compiles it. Only the deterministic tree builders are supported — the
// learned backend would put minutes of training inside a perf cell.
func buildCompiledBackend(backend string, set *rule.Set, binth int) (*compiled.Classifier, error) {
	var trees []*tree.Tree
	switch backend {
	case "hicuts":
		cfg := hicuts.DefaultConfig()
		if binth > 0 {
			cfg.Binth = binth
		}
		t, err := hicuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		trees = []*tree.Tree{t}
	case "hypercuts":
		cfg := hypercuts.DefaultConfig()
		if binth > 0 {
			cfg.Binth = binth
		}
		t, err := hypercuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		trees = []*tree.Tree{t}
	case "efficuts":
		cfg := efficuts.DefaultConfig()
		if binth > 0 {
			cfg.Binth = binth
		}
		cl, err := efficuts.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		trees = cl.Trees
	case "cutsplit":
		cfg := cutsplit.DefaultConfig()
		if binth > 0 {
			cfg.Binth = binth
		}
		cl, err := cutsplit.Build(set, cfg)
		if err != nil {
			return nil, err
		}
		trees = cl.Trees
	default:
		return nil, fmt.Errorf("perf: compiledbatch cell does not support backend %q", backend)
	}
	return compiled.Compile(set, trees...)
}

// measureCompiledPasses drives classify over `batches` disjoint windows of
// the trace per pass, returning the sorted per-batch latencies of the best
// pass (lowest p50 — the gated percentile) and the best pass's aggregate
// packet rate. The first pass doubles as warmup for the pooled scratch
// freelists; best-of-N then discards its cold-start cost.
func measureCompiledPasses(keys []rule.Packet, batches, batchSize, runs int, classify func([]rule.Packet)) ([]int64, float64) {
	var bestLats []int64
	bestPPS := 0.0
	for run := 0; run < runs; run++ {
		lats := make([]int64, 0, batches)
		start := time.Now()
		total := 0
		for b := 0; b < batches; b++ {
			lo := (b * batchSize) % len(keys)
			hi := lo + batchSize
			if hi > len(keys) {
				hi = len(keys)
			}
			t0 := time.Now()
			classify(keys[lo:hi])
			lats = append(lats, time.Since(t0).Nanoseconds())
			total += hi - lo
		}
		elapsed := time.Since(start).Seconds()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		if bestLats == nil || percentile(lats, 0.50) < percentile(bestLats, 0.50) {
			bestLats = lats
		}
		if pps := float64(total) / elapsed; pps > bestPPS {
			bestPPS = pps
		}
	}
	return bestLats, bestPPS
}

// batchFallbackFloor is the no-regression bound applied when the adaptive
// dispatch declined the grouped traversal: LookupBatch then runs the same
// scalar loop as the baseline plus one predicate, so anything below this is
// a broken fallback, not measurement noise.
const batchFallbackFloor = 0.9

// CheckCompiledBatch asserts the grouped traversal's headline claim: when
// the adaptive dispatch engaged (r.Grouped), batch p50 must reach minFactor
// times the scalar p50 (Factor = ScalarP50 / BatchP50, so minFactor 1.0
// means "at least as fast"). When the forest fell back to scalar, the cell
// instead asserts the fallback costs nothing (batchFallbackFloor). Returns a
// violation message when the claim does not hold.
func CheckCompiledBatch(r CompiledBatchComparison, minFactor float64) (violation string) {
	if minFactor <= 0 {
		return ""
	}
	if !r.Grouped {
		if r.Factor < batchFallbackFloor {
			return fmt.Sprintf(
				"%s_%d_%s batch=%d: scalar-fallback LookupBatch p50 %.0fns vs scalar %.0fns is %.2fx (want >= %.2fx — the fallback should be free)",
				r.Family, r.Size, r.Backend, r.BatchSize,
				r.BatchP50Nanos, r.ScalarP50Nanos, r.Factor, batchFallbackFloor)
		}
		return ""
	}
	if r.Factor < minFactor {
		return fmt.Sprintf(
			"%s_%d_%s batch=%d: grouped batch p50 %.0fns vs scalar %.0fns is only %.2fx (want >= %.2fx)",
			r.Family, r.Size, r.Backend, r.BatchSize,
			r.BatchP50Nanos, r.ScalarP50Nanos, r.Factor, minFactor)
	}
	return ""
}
