package perf

import "testing"

// TestRealTraceMeasure runs a small realtrace cell end to end: all four
// paths must post a positive rate, the replay match count must agree with
// the direct path (MeasureRealTrace errors otherwise), and the reported
// fraction must be consistent with its inputs.
func TestRealTraceMeasure(t *testing.T) {
	res, err := MeasureRealTrace("acl1", 200, "tss", 4000, 256, 1, RunConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectPacketsPerSec <= 0 || res.DecodePacketsPerSec <= 0 ||
		res.ReplayPacketsPerSec <= 0 || res.ShmPacketsPerSec <= 0 {
		t.Fatalf("non-positive rate in %+v", res)
	}
	if res.PcapBytes == 0 {
		t.Fatalf("empty pcap rendering: %+v", res)
	}
	want := res.ReplayPacketsPerSec / res.DirectPacketsPerSec
	if diff := res.ReplayFraction - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ReplayFraction = %v, want %v", res.ReplayFraction, want)
	}
	// The gate fires exactly when the fraction is below the floor.
	if v := CheckRealTrace(res, res.ReplayFraction/2); v != "" {
		t.Fatalf("CheckRealTrace below actual fraction: %q", v)
	}
	if v := CheckRealTrace(res, res.ReplayFraction*2); v == "" {
		t.Fatal("CheckRealTrace above actual fraction passed")
	}
	if v := CheckRealTrace(res, 0); v != "" {
		t.Fatalf("report-only CheckRealTrace: %q", v)
	}
}
