package perf

import (
	"strings"
	"testing"
)

// TestLookupAxisNames: the default (empty) lookup mode must keep canonical
// cell names unchanged, so the committed CI baseline keeps matching, while
// explicit modes get a distinguishing suffix.
func TestLookupAxisNames(t *testing.T) {
	base := Cell{Family: "acl1", Size: 300, Skew: SkewUniform, Churn: ChurnNone, Backend: "hicuts"}
	if got := base.Name(); got != "acl1_300_uniform_readonly_hicuts" {
		t.Fatalf("default name changed: %s", got)
	}
	c := base
	c.Lookup = LookupCompiled
	if got := c.Name(); got != "acl1_300_uniform_readonly_hicuts_compiled" {
		t.Fatalf("compiled name: %s", got)
	}
	c.Lookup = LookupLegacy
	if got := c.Name(); got != "acl1_300_uniform_readonly_hicuts_legacy" {
		t.Fatalf("legacy name: %s", got)
	}
	grid := CompiledGrid()
	cells := grid.Cells()
	if want := len(grid.Backends) * 2; len(cells) != want {
		t.Fatalf("CompiledGrid has %d cells, want %d", len(cells), want)
	}
}

// TestCompiledLookupBeatsLegacy runs the pinned compiled-vs-legacy grid and
// asserts the acceptance criterion of the compiled runtime: for every tree
// backend, the compiled flat-array lookup's p50 is at or below the legacy
// pointer-tree lookup's p50. Latency measurement is noisy, so the check
// retries a bounded number of times — a genuine regression loses every
// attempt, while one-sided scheduler noise does not.
func TestCompiledLookupBeatsLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("latency comparison skipped in -short mode")
	}
	grid := CompiledGrid()
	cfg := RunConfig{Seed: 1, Packets: 2048, Ops: 4000, Warmup: 500, Runs: 3, BatchSize: 256, Shards: 1}

	const attempts = 3
	var lastViolations []string
	for attempt := 1; attempt <= attempts; attempt++ {
		rep, err := Run(grid, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		pairs, violations := CheckCompiledWins(rep)
		if len(pairs) != len(grid.Backends) {
			t.Fatalf("got %d compiled/legacy pairs, want %d", len(pairs), len(grid.Backends))
		}
		if len(violations) == 0 {
			for _, p := range pairs {
				t.Logf("%s: compiled p50 %.0fns <= legacy p50 %.0fns",
					p.Name(), p.Compiled.Metrics.P50Nanos, p.Legacy.Metrics.P50Nanos)
			}
			return
		}
		lastViolations = violations
		t.Logf("attempt %d/%d: %s", attempt, attempts, strings.Join(violations, "; "))
	}
	t.Fatalf("compiled lookup slower than legacy after %d attempts:\n%s",
		attempts, strings.Join(lastViolations, "\n"))
}
