package perf

import "fmt"

// CompiledComparison is one compiled-vs-legacy pairing found in a report.
type CompiledComparison struct {
	// Compiled and Legacy are the two cells of the pair.
	Compiled CellResult
	Legacy   CellResult
	// Win reports whether the compiled cell's p50 is at or below legacy's.
	Win bool
}

// Name returns the pair's scenario stem (the cell name minus the lookup
// suffix).
func (c CompiledComparison) Name() string {
	base := c.Compiled.Cell
	base.Lookup = ""
	return base.Name()
}

// CheckCompiledWins pairs every compiled-lookup cell in the report with its
// legacy sibling and checks the headline claim of the compiled runtime: the
// flat-array lookup's median latency must not exceed the pointer tree's.
// It returns all pairings plus a violation message per losing pair; reports
// with no pairs yield one violation (the check was asked of the wrong run).
func CheckCompiledWins(rep Report) (pairs []CompiledComparison, violations []string) {
	for _, cr := range rep.Cells {
		if cr.Cell.Lookup != LookupCompiled {
			continue
		}
		legacyCell := cr.Cell
		legacyCell.Lookup = LookupLegacy
		leg, ok := rep.CellByName(legacyCell.Name())
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: no legacy sibling cell in report", cr.Cell.Name()))
			continue
		}
		pair := CompiledComparison{Compiled: cr, Legacy: leg,
			Win: cr.Metrics.P50Nanos <= leg.Metrics.P50Nanos}
		pairs = append(pairs, pair)
		if !pair.Win {
			violations = append(violations, fmt.Sprintf(
				"%s: compiled p50 %.0fns > legacy p50 %.0fns",
				pair.Name(), cr.Metrics.P50Nanos, leg.Metrics.P50Nanos))
		}
	}
	if len(pairs) == 0 {
		violations = append(violations, "report contains no compiled/legacy cell pairs (run a grid with lookups=compiled,legacy)")
	}
	return pairs, violations
}
