package perf

import (
	"fmt"
	"sort"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
)

// UpdateSpeedup is the outcome of the update-heavy bench gate: the same
// single-rule update workload measured against the delta-overlay write path
// and against rebuild-per-update, on the same backend and rule set.
type UpdateSpeedup struct {
	Family  string `json:"family"`
	Size    int    `json:"size"`
	Backend string `json:"backend"`
	Updates int    `json:"updates"`
	// OverlayP50Nanos is the median single-update latency through the
	// overlay write path (no backend rebuild).
	OverlayP50Nanos float64 `json:"overlay_p50_nanos"`
	// RebuildP50Nanos is the median single-update latency through the
	// original rebuild-per-update path.
	RebuildP50Nanos float64 `json:"rebuild_p50_nanos"`
	// Factor is RebuildP50Nanos / OverlayP50Nanos.
	Factor float64 `json:"factor"`
}

// MeasureUpdateSpeedup builds the backend twice over the same generated
// rule set — once with the online-update subsystem, once without — applies
// the same insert/delete workload to each, and reports the median
// per-update latencies. Background compaction is disabled on the overlay
// engine so the measurement isolates the write path itself (a compaction
// would only make the rebuild side look better anyway, as it runs off the
// measured path).
func MeasureUpdateSpeedup(family string, size int, backend string, updates int, cfg RunConfig) (UpdateSpeedup, error) {
	cfg = cfg.WithDefaults()
	if updates <= 0 {
		updates = 200
	}
	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return UpdateSpeedup{}, err
	}
	res := UpdateSpeedup{Family: family, Size: size, Backend: backend, Updates: updates}

	overlayOpts := engine.Options{Shards: 1, Binth: cfg.Binth, Seed: cfg.Seed,
		OnlineUpdates: true, CompactThreshold: -1}
	rebuildOpts := engine.Options{Shards: 1, Binth: cfg.Binth, Seed: cfg.Seed}

	res.OverlayP50Nanos, err = measureUpdateP50(backend, fam, size, cfg.Seed, updates, overlayOpts)
	if err != nil {
		return res, fmt.Errorf("perf: overlay update measurement: %w", err)
	}
	res.RebuildP50Nanos, err = measureUpdateP50(backend, fam, size, cfg.Seed, updates, rebuildOpts)
	if err != nil {
		return res, fmt.Errorf("perf: rebuild update measurement: %w", err)
	}
	if res.OverlayP50Nanos > 0 {
		res.Factor = res.RebuildP50Nanos / res.OverlayP50Nanos
	}
	return res, nil
}

// measureUpdateP50 applies `updates` alternating inserts and deletes to a
// freshly built engine and returns the median per-update latency. Inserts
// land at rotating positions so the workload is not a best-case pattern.
func measureUpdateP50(backend string, fam classbench.Family, size int, seed int64, updates int, opts engine.Options) (float64, error) {
	set := classbench.Generate(fam, size, seed)
	eng, err := engine.NewEngine(backend, set, opts)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	template := set.Rule(0)

	// Warm the write path (pools, maps) with a couple of unmeasured updates.
	if res, err := eng.Insert(0, template); err != nil {
		return 0, err
	} else if _, err := eng.Delete(res.ID); err != nil {
		return 0, err
	}

	durations := make([]int64, 0, updates)
	pending := make([]int, 0, updates/2+1)
	for len(durations) < updates {
		pos := (len(durations) * 37) % (eng.Rules().Len() + 1)
		t0 := time.Now()
		res, err := eng.Insert(pos, template)
		durations = append(durations, time.Since(t0).Nanoseconds())
		if err != nil {
			return 0, err
		}
		pending = append(pending, res.ID)
		if len(durations) >= updates {
			break
		}
		id := pending[0]
		pending = pending[1:]
		t0 = time.Now()
		_, err = eng.Delete(id)
		durations = append(durations, time.Since(t0).Nanoseconds())
		if err != nil {
			return 0, err
		}
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return percentile(durations, 0.50), nil
}

// CheckUpdateSpeedup asserts the update subsystem's headline claim: the
// overlay write path's median update latency must beat rebuild-per-update
// by at least minFactor. It returns a violation message when it does not
// (the CI bench gate runs this with minFactor 10).
func CheckUpdateSpeedup(r UpdateSpeedup, minFactor float64) (violation string) {
	if r.Factor < minFactor {
		return fmt.Sprintf(
			"%s_%d_%s: overlay update p50 %.0fns is only %.1fx faster than rebuild-per-update p50 %.0fns (want >= %.0fx)",
			r.Family, r.Size, r.Backend, r.OverlayP50Nanos, r.Factor, r.RebuildP50Nanos, minFactor)
	}
	return ""
}
