package perf

import (
	"context"
	"fmt"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/server"
)

// ProtoComparison is the outcome of the wire-protocol perf cell: the same
// batched lookup workload pushed through the v1 text protocol and the v2
// binary protocol against one in-process server, plus the direct in-process
// engine rate as the ceiling both protocols approach.
type ProtoComparison struct {
	Family  string `json:"family"`
	Size    int    `json:"size"`
	Backend string `json:"backend"`
	// Packets is the trace length pushed through each path per pass;
	// BatchSize is the packets per batch request.
	Packets   int `json:"packets"`
	BatchSize int `json:"batch_size"`
	// V1PacketsPerSec and V2PacketsPerSec are each path's best-of-N
	// end-to-end batch throughput (request encode + server parse + classify
	// + response decode, over loopback TCP).
	V1PacketsPerSec float64 `json:"v1_packets_per_sec"`
	V2PacketsPerSec float64 `json:"v2_packets_per_sec"`
	// EnginePacketsPerSec is the in-process ClassifyBatch rate with no wire
	// protocol at all.
	EnginePacketsPerSec float64 `json:"engine_packets_per_sec"`
	// Factor is V2PacketsPerSec / V1PacketsPerSec.
	Factor float64 `json:"factor"`
}

// MeasureProtoThroughput builds the backend over a generated rule set,
// serves it on a loopback listener, and measures batched lookup throughput
// through both wire protocols (best of runs passes each) and directly
// in-process.
func MeasureProtoThroughput(family string, size int, backend string, packets, batchSize, runs int, cfg RunConfig) (ProtoComparison, error) {
	cfg = cfg.WithDefaults()
	if packets <= 0 {
		packets = 50000
	}
	if batchSize <= 0 {
		batchSize = 1024
	}
	if batchSize > server.MaxBatch {
		batchSize = server.MaxBatch
	}
	if runs <= 0 {
		runs = 3
	}
	res := ProtoComparison{Family: family, Size: size, Backend: backend, Packets: packets, BatchSize: batchSize}

	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return res, err
	}
	set := classbench.Generate(fam, size, cfg.Seed)
	eng, err := engine.NewEngine(backend, set, engine.Options{Binth: cfg.Binth, Seed: cfg.Seed})
	if err != nil {
		return res, err
	}
	defer eng.Close()
	trace := classbench.GenerateTrace(set, packets, cfg.Seed+7)
	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = e.Key
	}

	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// In-process ceiling.
	out := make([]engine.Result, len(keys))
	res.EnginePacketsPerSec, err = bestRate(runs, func() error {
		for lo := 0; lo < len(keys); lo += batchSize {
			hi := min(lo+batchSize, len(keys))
			eng.ClassifyBatch(keys[lo:hi], out[lo:hi])
		}
		return nil
	}, len(keys))
	if err != nil {
		return res, err
	}

	// v1 text protocol.
	v1, err := server.Dial(ctx, addr.String())
	if err != nil {
		return res, err
	}
	defer v1.Close()
	res.V1PacketsPerSec, err = bestRate(runs, func() error {
		for lo := 0; lo < len(keys); lo += batchSize {
			hi := min(lo+batchSize, len(keys))
			if _, err := v1.ClassifyBatch(keys[lo:hi]); err != nil {
				return fmt.Errorf("v1 batch: %w", err)
			}
		}
		return nil
	}, len(keys))
	if err != nil {
		return res, err
	}

	// v2 binary protocol.
	v2, err := server.DialV2(ctx, addr.String())
	if err != nil {
		return res, err
	}
	defer v2.Close()
	res.V2PacketsPerSec, err = bestRate(runs, func() error {
		for lo := 0; lo < len(keys); lo += batchSize {
			hi := min(lo+batchSize, len(keys))
			if _, err := v2.ClassifyBatch(keys[lo:hi]); err != nil {
				return fmt.Errorf("v2 batch: %w", err)
			}
		}
		return nil
	}, len(keys))
	if err != nil {
		return res, err
	}

	if res.V1PacketsPerSec > 0 {
		res.Factor = res.V2PacketsPerSec / res.V1PacketsPerSec
	}
	return res, nil
}

// bestRate runs fn `runs` times and returns the best packets-per-second
// rate (best-of-N suppresses scheduler noise, matching MeasureCell).
func bestRate(runs int, fn func() error, packets int) (float64, error) {
	best := 0.0
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if rate := float64(packets) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best, nil
}

// CheckProtoThroughput asserts the v2 protocol's headline claim: batched
// lookups through v2 must reach at least minFactor times the v1 text
// protocol's throughput. It returns a violation message when they do not.
func CheckProtoThroughput(r ProtoComparison, minFactor float64) (violation string) {
	if minFactor > 0 && r.Factor < minFactor {
		return fmt.Sprintf(
			"%s_%d_%s: v2 batch throughput %.0f pps is only %.2fx of v1's %.0f pps (want >= %.2fx)",
			r.Family, r.Size, r.Backend, r.V2PacketsPerSec, r.Factor, r.V1PacketsPerSec, minFactor)
	}
	return ""
}
