package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ArtifactName returns the canonical per-scenario artifact file name,
// "BENCH_<scenario>.json".
func ArtifactName(c Cell) string {
	return fmt.Sprintf("BENCH_%s.json", c.Name())
}

// WriteArtifact marshals the report as indented JSON to path.
func WriteArtifact(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perf: write %s: %w", path, err)
	}
	return nil
}

// WriteCellArtifacts writes one single-cell report per scenario into dir,
// named BENCH_<scenario>.json. Each file is a full, self-describing Report
// so any artifact can be compared or rendered on its own.
func WriteCellArtifacts(dir string, r Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("perf: create artifact dir %s: %w", dir, err)
	}
	for _, c := range r.Cells {
		single := Report{
			SchemaVersion: r.SchemaVersion,
			Tool:          r.Tool,
			Grid:          r.Grid,
			Config:        r.Config,
			Cells:         []CellResult{c},
		}
		if err := WriteArtifact(filepath.Join(dir, ArtifactName(c.Cell)), single); err != nil {
			return err
		}
	}
	return nil
}

// ReadArtifact loads a report from path, validating the schema version.
func ReadArtifact(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("perf: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	if r.SchemaVersion < MinReadSchemaVersion || r.SchemaVersion > SchemaVersion {
		return Report{}, fmt.Errorf("perf: %s: schema version %d, this build reads versions %d..%d",
			path, r.SchemaVersion, MinReadSchemaVersion, SchemaVersion)
	}
	if len(r.Cells) == 0 {
		return Report{}, fmt.Errorf("perf: %s: report has no cells", path)
	}
	return r, nil
}
