package perf

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/iface"
	"neurocuts/internal/rule"
)

// RealTraceResult is the outcome of the realtrace perf cell: a synthetic
// ClassBench trace rendered as a real pcap capture, then pushed through the
// ingestion layer — decode alone, decode + classify (the classifyd -pcap
// replay loop), and the shared-memory ring transport — with the direct
// in-process classify rate as the ceiling.
type RealTraceResult struct {
	Family  string `json:"family"`
	Size    int    `json:"size"`
	Backend string `json:"backend"`
	// Packets is the trace length per pass; BatchSize the ReadBatch span.
	Packets   int `json:"packets"`
	BatchSize int `json:"batch_size"`
	// PcapBytes is the rendered capture's size.
	PcapBytes int `json:"pcap_bytes"`
	// DirectPacketsPerSec is the in-process ClassifyBatch rate over the
	// pre-decoded keys — the ceiling every ingestion path approaches.
	DirectPacketsPerSec float64 `json:"direct_packets_per_sec"`
	// DecodePacketsPerSec is the pure ingestion rate: pcap parse + Ethernet/
	// IPv4 decode into keys, no classification.
	DecodePacketsPerSec float64 `json:"decode_packets_per_sec"`
	// ReplayPacketsPerSec is the end-to-end replay loop: decode + classify,
	// exactly what classifyd -pcap runs.
	ReplayPacketsPerSec float64 `json:"replay_packets_per_sec"`
	// ShmPacketsPerSec is the batch rate through the shared-memory ring
	// (client submit + server classify + result consume).
	ShmPacketsPerSec float64 `json:"shm_packets_per_sec"`
	// ReplayFraction is ReplayPacketsPerSec / DirectPacketsPerSec: how much
	// of the classify ceiling survives the ingestion layer.
	ReplayFraction float64 `json:"replay_fraction"`
	// Matches is the replay's match count, cross-checked against the direct
	// path so a silently corrupted decode cannot post a good number.
	Matches int `json:"matches"`
}

// MeasureRealTrace builds the backend over a generated rule set, renders a
// rule-biased trace as an in-memory pcap capture, and measures the
// ingestion paths (best of runs passes each).
func MeasureRealTrace(family string, size int, backend string, packets, batchSize, runs int, cfg RunConfig) (RealTraceResult, error) {
	cfg = cfg.WithDefaults()
	if packets <= 0 {
		packets = 50000
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	if runs <= 0 {
		runs = 3
	}
	res := RealTraceResult{Family: family, Size: size, Backend: backend, Packets: packets, BatchSize: batchSize}

	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return res, err
	}
	set := classbench.Generate(fam, size, cfg.Seed)
	eng, err := engine.NewEngine(backend, set, engine.Options{Binth: cfg.Binth, Seed: cfg.Seed})
	if err != nil {
		return res, err
	}
	defer eng.Close()

	trace := classbench.GenerateTrace(set, packets, cfg.Seed+7)
	var pcap bytes.Buffer
	if err := iface.WriteTracePcap(&pcap, trace); err != nil {
		return res, err
	}
	res.PcapBytes = pcap.Len()
	data := pcap.Bytes()

	// The keys every path classifies are the *decoded* ones (canonical wire
	// form), so direct and replay measure the same classification work.
	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = iface.CanonicalKey(e.Key)
	}

	// Direct ceiling, and the ground-truth match count.
	out := make([]engine.Result, len(keys))
	directMatches := 0
	eng.ClassifyBatch(keys, out)
	for i := range out {
		if out[i].OK {
			directMatches++
		}
	}
	res.DirectPacketsPerSec, err = bestRate(runs, func() error {
		for lo := 0; lo < len(keys); lo += batchSize {
			hi := min(lo+batchSize, len(keys))
			eng.ClassifyBatch(keys[lo:hi], out[lo:hi])
		}
		return nil
	}, len(keys))
	if err != nil {
		return res, err
	}

	// Pure decode: the ingestion layer alone.
	ps := make([]rule.Packet, batchSize)
	res.DecodePacketsPerSec, err = bestRate(runs, func() error {
		r, err := iface.NewPcapReader(bytes.NewReader(data), iface.PcapConfig{})
		if err != nil {
			return err
		}
		got := 0
		for {
			n, err := r.ReadBatch(ps)
			got += n
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		if got != packets {
			return fmt.Errorf("decode pass read %d packets, want %d", got, packets)
		}
		return nil
	}, packets)
	if err != nil {
		return res, err
	}

	// End-to-end replay: decode + classify, the classifyd -pcap loop.
	resBatch := make([]engine.Result, batchSize)
	res.ReplayPacketsPerSec, err = bestRate(runs, func() error {
		r, err := iface.NewPcapReader(bytes.NewReader(data), iface.PcapConfig{})
		if err != nil {
			return err
		}
		matches := 0
		for {
			n, err := r.ReadBatch(ps)
			if n > 0 {
				eng.ClassifyBatch(ps[:n], resBatch[:n])
				for i := 0; i < n; i++ {
					if resBatch[i].OK {
						matches++
					}
				}
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		if matches != directMatches {
			return fmt.Errorf("replay matched %d packets, direct matched %d", matches, directMatches)
		}
		res.Matches = matches
		return nil
	}, packets)
	if err != nil {
		return res, err
	}

	// Shared-memory ring: batches through the descriptor rings.
	dir, err := os.MkdirTemp("", "neurocuts-realtrace-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	srv, err := iface.NewShmServer(filepath.Join(dir, "ring"), eng, iface.ShmServerConfig{})
	if err != nil {
		return res, err
	}
	defer srv.Close()
	cli, err := iface.OpenShmClient(srv.Path(), iface.ShmClientConfig{})
	if err != nil {
		return res, err
	}
	defer cli.Close()
	res.ShmPacketsPerSec, err = bestRate(runs, func() error {
		for lo := 0; lo < len(keys); lo += batchSize {
			hi := min(lo+batchSize, len(keys))
			if err := cli.ClassifyBatchInto(keys[lo:hi], out[lo:hi]); err != nil {
				return fmt.Errorf("shm batch: %w", err)
			}
		}
		return nil
	}, len(keys))
	if err != nil {
		return res, err
	}

	if res.DirectPacketsPerSec > 0 {
		res.ReplayFraction = res.ReplayPacketsPerSec / res.DirectPacketsPerSec
	}
	return res, nil
}

// CheckRealTrace asserts the ingestion layer's claim: end-to-end pcap
// replay (decode + classify) must retain at least minFraction of the direct
// classify throughput — the decode path is zero-alloc and must never become
// the bottleneck's dominant term. It returns a violation message when the
// fraction falls short.
func CheckRealTrace(r RealTraceResult, minFraction float64) (violation string) {
	if minFraction > 0 && r.ReplayFraction < minFraction {
		return fmt.Sprintf(
			"%s_%d_%s: pcap replay %.0f pps retains only %.2f of the direct %.0f pps (want >= %.2f)",
			r.Family, r.Size, r.Backend, r.ReplayPacketsPerSec, r.ReplayFraction, r.DirectPacketsPerSec, minFraction)
	}
	return ""
}
