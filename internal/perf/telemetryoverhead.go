package perf

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
	"neurocuts/internal/telemetry"
)

// TelemetryOverhead is the outcome of the checktelemetry perf cell: the same
// Zipf-skewed batch workload classified through two otherwise-identical
// engines, one with telemetry off and one with the full online-telemetry
// stack armed at its most expensive setting (latency histograms recording
// every span plus the flight recorder capturing every lookup at threshold 0).
// The gated quantities are the relative batch-p50 cost of instrumentation and
// the steady-state allocation delta, which must be zero: telemetry that
// allocates on the hot path would defeat the zero-alloc serving contract.
type TelemetryOverhead struct {
	Family  string `json:"family"`
	Size    int    `json:"size"`
	Backend string `json:"backend"`
	// Batches and BatchSize describe the measured workload: Batches windows
	// of BatchSize packets per pass.
	Batches   int `json:"batches"`
	BatchSize int `json:"batch_size"`
	// Per-batch latency percentiles, nanoseconds, from the best pass of each
	// configuration.
	OffP50Nanos float64 `json:"off_p50_nanos"`
	OffP99Nanos float64 `json:"off_p99_nanos"`
	OnP50Nanos  float64 `json:"on_p50_nanos"`
	OnP99Nanos  float64 `json:"on_p99_nanos"`
	// Steady-state mallocs per batch (minimum across measured passes, so a
	// one-off warmup allocation does not count against the gate).
	OffAllocsPerBatch float64 `json:"off_allocs_per_batch"`
	OnAllocsPerBatch  float64 `json:"on_allocs_per_batch"`
	// OverheadPct is (OnP50 - OffP50) / OffP50 * 100: the median latency tax
	// of full instrumentation. Negative values are measurement noise.
	OverheadPct float64 `json:"overhead_pct"`
	// AllocsDelta is OnAllocsPerBatch - OffAllocsPerBatch.
	AllocsDelta float64 `json:"allocs_delta"`
	// HistogramSamples and SlowCaptured confirm the instrumented run really
	// recorded: a zero here means the cell measured an unarmed engine and the
	// overhead number is meaningless.
	HistogramSamples uint64 `json:"histogram_samples"`
	SlowCaptured     uint64 `json:"slow_captured"`
}

// MeasureTelemetryOverhead builds the same backend twice over one generated
// rule set — telemetry off and telemetry fully armed (slow threshold 0, so
// the flight recorder fires on every lookup) — and drives the identical
// Zipf-skewed trace through ClassifyBatch on both, measuring per-batch
// latency (best of `runs` passes per configuration, after one unmeasured
// warmup pass) and steady-state mallocs per batch.
func MeasureTelemetryOverhead(family string, size int, backend string, batches, batchSize, runs int, cfg RunConfig) (TelemetryOverhead, error) {
	cfg = cfg.WithDefaults()
	if batches <= 0 {
		batches = 96
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	if runs <= 0 {
		runs = 3
	}
	res := TelemetryOverhead{
		Family: family, Size: size, Backend: backend,
		Batches: batches, BatchSize: batchSize,
	}

	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return res, err
	}
	set := classbench.Generate(fam, size, cfg.Seed)
	entries := classbench.ZipfTrace(set, batches*batchSize, cfg.Flows, cfg.ZipfSkew, cfg.Seed+7)
	keys := make([]rule.Packet, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}

	// Shards: 1 keeps both engines on the inline batch path, so the measured
	// spans are pure lookup work with (at most) one histogram record and one
	// recorder offer per batch element — no worker handoff noise.
	base := engine.Options{Shards: 1, Binth: cfg.Binth}

	off, err := engine.NewEngine(backend, set, base)
	if err != nil {
		return res, err
	}
	defer off.Close()

	tel := telemetry.New(telemetry.Config{})
	tel.SetSlowThreshold(0)
	armed := base
	armed.Telemetry = tel
	on, err := engine.NewEngine(backend, set, armed)
	if err != nil {
		return res, err
	}
	defer on.Close()

	offLats, offAllocs := measureTelemetryPasses(off, keys, batches, batchSize, runs)
	onLats, onAllocs := measureTelemetryPasses(on, keys, batches, batchSize, runs)

	res.OffP50Nanos = percentile(offLats, 0.50)
	res.OffP99Nanos = percentile(offLats, 0.99)
	res.OnP50Nanos = percentile(onLats, 0.50)
	res.OnP99Nanos = percentile(onLats, 0.99)
	res.OffAllocsPerBatch = offAllocs
	res.OnAllocsPerBatch = onAllocs
	if res.OffP50Nanos > 0 {
		res.OverheadPct = (res.OnP50Nanos - res.OffP50Nanos) / res.OffP50Nanos * 100
	}
	res.AllocsDelta = onAllocs - offAllocs
	res.HistogramSamples = tel.LookupBatch.Snapshot().Count()
	res.SlowCaptured = tel.Slow.Captured()
	return res, nil
}

// measureTelemetryPasses drives ClassifyBatch over `batches` disjoint windows
// of the trace per pass. Pass zero is unmeasured warmup (scratch freelists,
// flow-state, branch predictors); each measured pass then records per-batch
// latencies and the pass's total malloc count. It returns the sorted
// latencies of the best pass (lowest p50) and the minimum mallocs-per-batch
// across measured passes — the steady-state allocation rate, immune to
// one-off warmup or GC-metadata noise in a single pass.
func measureTelemetryPasses(eng *engine.Engine, keys []rule.Packet, batches, batchSize, runs int) ([]int64, float64) {
	out := make([]engine.Result, batchSize)
	lats := make([]int64, batches)
	drive := func(measured bool) uint64 {
		var before, after runtime.MemStats
		if measured {
			runtime.ReadMemStats(&before)
		}
		for b := 0; b < batches; b++ {
			lo := (b * batchSize) % len(keys)
			hi := lo + batchSize
			if hi > len(keys) {
				hi = len(keys)
			}
			t0 := time.Now()
			eng.ClassifyBatch(keys[lo:hi], out[:hi-lo])
			lats[b] = time.Since(t0).Nanoseconds()
		}
		if !measured {
			return 0
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}

	drive(false)
	var bestLats []int64
	minAllocs := -1.0
	for run := 0; run < runs; run++ {
		mallocs := drive(true)
		sorted := make([]int64, batches)
		copy(sorted, lats)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if bestLats == nil || percentile(sorted, 0.50) < percentile(bestLats, 0.50) {
			bestLats = sorted
		}
		if perBatch := float64(mallocs) / float64(batches); minAllocs < 0 || perBatch < minAllocs {
			minAllocs = perBatch
		}
	}
	return bestLats, minAllocs
}

// CheckTelemetry asserts the telemetry cost contract: full instrumentation
// (every span recorded, flight recorder at threshold 0) may tax batch p50 by
// at most maxOverheadPct percent and must not allocate on the hot path (zero
// steady-state mallocs-per-batch delta). It also rejects a run whose armed
// engine recorded nothing — that means the cell silently measured two
// unarmed engines. Returns a violation message when the contract is broken.
func CheckTelemetry(r TelemetryOverhead, maxOverheadPct float64) (violation string) {
	if r.HistogramSamples == 0 || r.SlowCaptured == 0 {
		return fmt.Sprintf(
			"%s_%d_%s: armed engine recorded nothing (histogram samples %d, slow captures %d) — the overhead measurement is void",
			r.Family, r.Size, r.Backend, r.HistogramSamples, r.SlowCaptured)
	}
	if r.AllocsDelta > 0 {
		return fmt.Sprintf(
			"%s_%d_%s batch=%d: telemetry allocates on the hot path (%.2f mallocs/batch armed vs %.2f off, delta %.2f, want 0)",
			r.Family, r.Size, r.Backend, r.BatchSize,
			r.OnAllocsPerBatch, r.OffAllocsPerBatch, r.AllocsDelta)
	}
	if maxOverheadPct > 0 && r.OverheadPct > maxOverheadPct {
		return fmt.Sprintf(
			"%s_%d_%s batch=%d: telemetry batch p50 %.0fns vs %.0fns off is +%.1f%% (want <= %.1f%%)",
			r.Family, r.Size, r.Backend, r.BatchSize,
			r.OnP50Nanos, r.OffP50Nanos, r.OverheadPct, maxOverheadPct)
	}
	return ""
}
