package perf

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"runtime"

	"neurocuts/internal/classbench"
	"neurocuts/internal/dataplane"
	"neurocuts/internal/engine"
	"neurocuts/internal/rule"
)

// DataplaneComparison is the outcome of the dataplane perf cell: the same
// skewed batched lookup workload, submitted concurrently, served once by
// the worker-pool engine (shared sharded flow cache, WaitGroup barrier per
// batch) and once by the run-to-completion dataplane (flow-hash demux,
// per-core loops, lock-free per-core caches, completion vectors). The
// gated quantity is batch latency at the tail: under concurrent submitters
// the pool path's shared structures are where contention shows up first,
// and p99 is where it lands.
type DataplaneComparison struct {
	Family  string `json:"family"`
	Size    int    `json:"size"`
	Backend string `json:"backend"`
	// Cores is both the pool engine's shard count and the dataplane's loop
	// count, so the two paths get the same parallelism budget.
	Cores int `json:"cores"`
	// Submitters is the number of goroutines concurrently submitting
	// batches; Batches is the measured batch count per submitter per pass.
	Submitters int `json:"submitters"`
	Batches    int `json:"batches"`
	BatchSize  int `json:"batch_size"`
	// CacheEntries is the flow-cache budget given to each path (sharded
	// cache on the pool path, split across per-core caches on the
	// dataplane path).
	CacheEntries int `json:"cache_entries"`
	// Batch-latency percentiles, nanoseconds, per-percentile minimum
	// across passes.
	PoolP50Nanos      float64 `json:"pool_p50_nanos"`
	PoolP99Nanos      float64 `json:"pool_p99_nanos"`
	DataplaneP50Nanos float64 `json:"dataplane_p50_nanos"`
	DataplaneP99Nanos float64 `json:"dataplane_p99_nanos"`
	// Aggregate throughput, packets per second, best pass.
	PoolPacketsPerSec      float64 `json:"pool_packets_per_sec"`
	DataplanePacketsPerSec float64 `json:"dataplane_packets_per_sec"`
	// Factor is PoolP99Nanos / DataplaneP99Nanos: above 1, the dataplane's
	// tail is shorter than the worker pool's.
	Factor float64 `json:"factor"`
}

// MeasureDataplane builds the backend twice over one generated rule set —
// worker-pool serving and dataplane serving — and pushes the same
// flow-skewed trace through both from `submitters` concurrent goroutines,
// measuring per-batch latency. Both paths get identical parallelism
// (cores) and flow-cache budget; only the serving architecture differs.
func MeasureDataplane(family string, size int, backend string, cores, submitters, batches, batchSize, cacheEntries, runs int, cfg RunConfig) (DataplaneComparison, error) {
	cfg = cfg.WithDefaults()
	if cores == 0 {
		// Machine-matched: one loop per processor is the run-to-completion
		// deployment shape (more loops than processors just adds handoffs).
		cores = runtime.GOMAXPROCS(0)
	} else if cores < 0 {
		cores = 8
	}
	if submitters <= 0 {
		submitters = 4
	}
	if batches <= 0 {
		batches = 64
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	if cacheEntries < 0 {
		cacheEntries = 0
	}
	if runs <= 0 {
		runs = 3
	}
	res := DataplaneComparison{
		Family: family, Size: size, Backend: backend,
		Cores: cores, Submitters: submitters, Batches: batches,
		BatchSize: batchSize, CacheEntries: cacheEntries,
	}

	fam, err := classbench.FamilyByName(family)
	if err != nil {
		return res, err
	}
	set := classbench.Generate(fam, size, cfg.Seed)
	// The trace generator emits flow bursts (few flows carry most packets),
	// which is the regime both flow caches are built for.
	trace := classbench.GenerateTrace(set, submitters*batches*batchSize, cfg.Seed+7)
	keys := make([]rule.Packet, len(trace))
	for i, e := range trace {
		keys[i] = e.Key
	}

	poolEng, err := engine.NewEngine(backend, set, engine.Options{
		Binth: cfg.Binth, Seed: cfg.Seed,
		Shards: cores, FlowCacheEntries: cacheEntries,
	})
	if err != nil {
		return res, err
	}
	defer poolEng.Close()

	dpEng, err := engine.NewEngine(backend, set, engine.Options{
		Binth: cfg.Binth, Seed: cfg.Seed,
		Shards: cores, FlowCacheEntries: 0,
	})
	if err != nil {
		return res, err
	}
	defer dpEng.Close()
	dp, err := dataplane.Attach(dpEng, dataplane.Config{Cores: cores, CacheEntries: cacheEntries})
	if err != nil {
		return res, err
	}

	poolLats, poolPPS := measureBatchLatency(poolEng.ClassifyBatch, keys, submitters, batches, batchSize, runs)
	dpLats, dpPPS := measureBatchLatency(dp.ClassifyBatch, keys, submitters, batches, batchSize, runs)

	res.PoolP50Nanos = percentile(poolLats, 0.50)
	res.PoolP99Nanos = percentile(poolLats, 0.99)
	res.DataplaneP50Nanos = percentile(dpLats, 0.50)
	res.DataplaneP99Nanos = percentile(dpLats, 0.99)
	res.PoolPacketsPerSec = poolPPS
	res.DataplanePacketsPerSec = dpPPS
	if res.DataplaneP99Nanos > 0 {
		res.Factor = res.PoolP99Nanos / res.DataplaneP99Nanos
	}
	return res, nil
}

// measureBatchLatency drives classify from `submitters` concurrent
// goroutines, each submitting `batches` disjoint windows of the trace per
// pass, and returns the sorted per-batch latencies of the best pass (the
// pass with the lowest p99 — best-of-N for the same noise-suppression
// reason as every other cell) plus the best pass's aggregate packet rate.
func measureBatchLatency(classify func([]rule.Packet, []engine.Result), keys []rule.Packet, submitters, batches, batchSize, runs int) ([]int64, float64) {
	var bestLats []int64
	bestPPS := 0.0
	totalPackets := submitters * batches * batchSize
	for run := 0; run < runs; run++ {
		lats := make([][]int64, submitters)
		var wg sync.WaitGroup
		start := time.Now()
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				out := make([]engine.Result, batchSize)
				mine := make([]int64, 0, batches)
				for b := 0; b < batches; b++ {
					lo := ((s*batches + b) * batchSize) % len(keys)
					hi := lo + batchSize
					if hi > len(keys) {
						hi = len(keys)
					}
					t0 := time.Now()
					classify(keys[lo:hi], out[:hi-lo])
					mine = append(mine, time.Since(t0).Nanoseconds())
				}
				lats[s] = mine
			}(s)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		merged := make([]int64, 0, submitters*batches)
		for _, l := range lats {
			merged = append(merged, l...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		if bestLats == nil || percentile(merged, 0.99) < percentile(bestLats, 0.99) {
			bestLats = merged
		}
		if pps := float64(totalPackets) / elapsed; pps > bestPPS {
			bestPPS = pps
		}
	}
	return bestLats, bestPPS
}

// CheckDataplane asserts the dataplane's headline claim: under concurrent
// submitters, batch p99 through the run-to-completion path must be no
// worse than minFactor times better than the worker pool's (Factor =
// PoolP99 / DataplaneP99, so minFactor 1.0 means "at least as good"). It
// returns a violation message when the claim does not hold.
func CheckDataplane(r DataplaneComparison, minFactor float64) (violation string) {
	if minFactor > 0 && r.Factor < minFactor {
		return fmt.Sprintf(
			"%s_%d_%s cores=%d submitters=%d: dataplane batch p99 %.0fns vs pool %.0fns is only %.2fx (want >= %.2fx)",
			r.Family, r.Size, r.Backend, r.Cores, r.Submitters,
			r.DataplaneP99Nanos, r.PoolP99Nanos, r.Factor, minFactor)
	}
	return ""
}
