package perf

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteTable renders the report as a text table — the human view of exactly
// the data the JSON artifact carries.
func WriteTable(w io.Writer, r Report) {
	fmt.Fprintf(w, "perf report (schema v%d, seed %d, %d cells)\n",
		r.SchemaVersion, r.Config.Seed, len(r.Cells))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tp50 ns\tp99 ns\tMpps\tbuild ms\tmem KiB\tallocs/op\tlookup cost\tupdates\thit rate")
	for _, c := range r.Cells {
		m := c.Metrics
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2f\t%.2f\t%.1f\t%.2f\t%d\t%d\t%.2f\n",
			c.Cell.Name(), m.P50Nanos, m.P99Nanos, m.ThroughputPPS/1e6,
			float64(m.BuildNanos)/1e6, float64(m.MemoryBytes)/1024,
			m.AllocsPerOp, m.LookupCost, m.Updates, m.CacheHitRate)
	}
	tw.Flush()
}
