package perf

import (
	"bytes"
	"strings"
	"testing"
)

// baselineReport fabricates a deterministic two-cell report.
func baselineReport() Report {
	mk := func(family string, p50, p99, pps, allocs float64, mem int) CellResult {
		return CellResult{
			Cell: Cell{Family: family, Size: 300, Skew: SkewUniform, Churn: ChurnNone, Backend: "linear"},
			Metrics: CellMetrics{
				P50Nanos: p50, P99Nanos: p99, ThroughputPPS: pps,
				AllocsPerOp: allocs, MemoryBytes: mem, LookupCost: 300, Rules: 300,
			},
		}
	}
	return Report{
		SchemaVersion: SchemaVersion,
		Tool:          "perflab",
		Config:        RunConfig{Seed: 1}.WithDefaults(),
		Cells: []CellResult{
			mk("acl1", 1000, 2000, 5e6, 0, 1<<20),
			mk("fw1", 1500, 3000, 4e6, 0, 2<<20),
		},
	}
}

func TestCompareUnchangedPasses(t *testing.T) {
	old := baselineReport()
	cmp := Compare(old, old, DefaultThresholds())
	if !cmp.OK() {
		t.Fatalf("identical reports flagged: %+v", cmp.Regressions())
	}
	if len(cmp.Deltas) != 10 { // 5 metrics x 2 cells
		t.Errorf("deltas = %d, want 10", len(cmp.Deltas))
	}
	// Small, sub-threshold noise must also pass.
	noisy := baselineReport()
	for i := range noisy.Cells {
		noisy.Cells[i].Metrics.P50Nanos *= 1.10
		noisy.Cells[i].Metrics.ThroughputPPS *= 0.90
	}
	if cmp := Compare(old, noisy, DefaultThresholds()); !cmp.OK() {
		t.Fatalf("sub-threshold noise flagged: %+v", cmp.Regressions())
	}
}

func TestCompareFlagsInjectedLatencyRegression(t *testing.T) {
	old := baselineReport()
	bad := baselineReport()
	// The acceptance scenario: a 2x latency regression on one cell. The
	// median gate catches it; the tail band is deliberately wider than 2x.
	bad.Cells[0].Metrics.P50Nanos *= 2
	bad.Cells[0].Metrics.P99Nanos *= 2
	cmp := Compare(old, bad, DefaultThresholds())
	if cmp.OK() {
		t.Fatal("2x latency regression not flagged")
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Metric != "p50_nanos" {
		t.Fatalf("regressions = %+v, want p50 on one cell", regs)
	}
	if regs[0].Cell != bad.Cells[0].Cell.Name() {
		t.Errorf("regression attributed to %q", regs[0].Cell)
	}
	var buf bytes.Buffer
	cmp.Write(&buf)
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Error("rendered comparison missing REGRESSION marker")
	}

	// A tail collapse beyond the wide band (6x) is still caught even with
	// the median unchanged.
	tailBad := baselineReport()
	tailBad.Cells[0].Metrics.P99Nanos *= 6
	cmp = Compare(old, tailBad, DefaultThresholds())
	regs = cmp.Regressions()
	if len(regs) != 1 || regs[0].Metric != "p99_nanos" {
		t.Fatalf("tail collapse regressions = %+v, want p99 on one cell", regs)
	}
}

func TestCompareFlagsAllocAndThroughputAndMemory(t *testing.T) {
	old := baselineReport()
	bad := baselineReport()
	bad.Cells[0].Metrics.AllocsPerOp = 0.5 // any increase over 0 fails
	bad.Cells[1].Metrics.ThroughputPPS /= 2
	bad.Cells[1].Metrics.MemoryBytes *= 2
	cmp := Compare(old, bad, DefaultThresholds())
	got := map[string]bool{}
	for _, d := range cmp.Regressions() {
		got[d.Metric] = true
	}
	for _, want := range []string{"allocs_per_op", "throughput_pps", "memory_bytes"} {
		if !got[want] {
			t.Errorf("missing %s regression: %+v", want, cmp.Regressions())
		}
	}
}

func TestCompareMissingAndNewCells(t *testing.T) {
	old := baselineReport()
	shrunk := baselineReport()
	shrunk.Cells = shrunk.Cells[:1]
	cmp := Compare(old, shrunk, DefaultThresholds())
	if cmp.OK() {
		t.Fatal("coverage loss must fail the comparison")
	}
	if len(cmp.MissingCells) != 1 {
		t.Fatalf("missing = %v", cmp.MissingCells)
	}

	grown := baselineReport()
	extra := grown.Cells[0]
	extra.Cell.Family = "ipc1"
	grown.Cells = append(grown.Cells, extra)
	cmp = Compare(old, grown, DefaultThresholds())
	if !cmp.OK() {
		t.Fatalf("new cells must not fail: %+v", cmp.Regressions())
	}
	if len(cmp.NewCells) != 1 {
		t.Fatalf("new = %v", cmp.NewCells)
	}
}
