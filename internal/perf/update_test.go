package perf

import (
	"os"
	"path/filepath"
	"testing"
)

// TestUpdateHeavyCellMeasuresUpdateLatency: updateheavy cells run against an
// overlay-enabled engine and report update-latency percentiles.
func TestUpdateHeavyCellMeasuresUpdateLatency(t *testing.T) {
	cell := Cell{Family: "acl1", Size: 100, Skew: SkewUniform, Churn: ChurnHeavy, Backend: "tss"}
	res, err := MeasureCell(cell, RunConfig{Seed: 1, Packets: 256, Ops: 3000, Warmup: 50,
		Flows: 16, ZipfSkew: 1.2, BatchSize: 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Updates == 0 {
		t.Error("updateheavy cell applied no updates")
	}
	if res.Metrics.UpdateP50Nanos <= 0 || res.Metrics.UpdateP99Nanos < res.Metrics.UpdateP50Nanos {
		t.Errorf("update percentiles p50=%.0f p99=%.0f", res.Metrics.UpdateP50Nanos, res.Metrics.UpdateP99Nanos)
	}
	if res.Cell.Name() != "acl1_100_uniform_updateheavy_tss" {
		t.Errorf("cell name %q", res.Cell.Name())
	}
	// Canonical strips the timing fields so golden diffs stay stable.
	canon := Report{SchemaVersion: SchemaVersion, Cells: []CellResult{res}}.Canonical()
	if m := canon.Cells[0].Metrics; m.UpdateP50Nanos != 0 || m.UpdateP99Nanos != 0 {
		t.Errorf("Canonical kept update percentiles: %+v", m)
	}
}

// TestChurnCellMeasuresUpdateLatency: plain churn cells also report update
// percentiles (of the rebuild path) in schema v2.
func TestChurnCellMeasuresUpdateLatency(t *testing.T) {
	cell := Cell{Family: "acl1", Size: 100, Skew: SkewUniform, Churn: ChurnUpdates, Backend: "linear"}
	res, err := MeasureCell(cell, RunConfig{Seed: 1, Packets: 256, Ops: 3000, Warmup: 50,
		Flows: 16, ZipfSkew: 1.2, BatchSize: 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.UpdateP50Nanos <= 0 {
		t.Errorf("churn cell update p50 = %.0f, want > 0", res.Metrics.UpdateP50Nanos)
	}
}

// TestReadArtifactAcceptsV1: schema-v1 reports (no update-latency fields)
// stay readable, and Compare against them does not fabricate update-metric
// regressions.
func TestReadArtifactAcceptsV1(t *testing.T) {
	v1 := `{
  "schema_version": 1,
  "tool": "perflab",
  "grid": {"families": ["acl1"], "sizes": [100], "skews": ["uniform"], "churns": ["churn"], "backends": ["linear"]},
  "config": {"seed": 1, "packets": 256, "ops": 1000, "runs": 1, "warmup": 50, "flows": 16,
             "zipf_skew": 1.2, "batch_size": 64, "shards": 1, "flow_cache_entries": 0, "binth": 0},
  "cells": [{
    "cell": {"family": "acl1", "size": 100, "skew": "uniform", "churn": "churn", "backend": "linear"},
    "metrics": {"build_nanos": 1000, "p50_nanos": 100, "p99_nanos": 500, "throughput_pps": 1e6,
                "allocs_per_op": 0, "memory_bytes": 9600, "lookup_cost": 100, "entries": 100,
                "rules": 100, "updates": 10, "cache_hit_rate": 0}
  }]
}`
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := ReadArtifact(path)
	if err != nil {
		t.Fatalf("v1 report rejected: %v", err)
	}
	if old.Cells[0].Metrics.UpdateP50Nanos != 0 {
		t.Fatal("v1 report grew update metrics from nowhere")
	}

	// A v2 candidate for the same cell, now with update metrics: no update
	// regression may be flagged (the baseline has no update data), while the
	// ordinary metrics still compare.
	cand := old
	cand.SchemaVersion = SchemaVersion
	cand.Cells = []CellResult{old.Cells[0]}
	cand.Cells[0].Metrics.UpdateP50Nanos = 50000
	cand.Cells[0].Metrics.UpdateP99Nanos = 90000
	cmp := Compare(old, cand, DefaultThresholds())
	if !cmp.OK() {
		t.Fatalf("v1-vs-v2 comparison regressed: %+v", cmp.Regressions())
	}
	for _, d := range cmp.Deltas {
		if d.Metric == "update_p50_ns" && d.Regression {
			t.Fatalf("update metric flagged against v1 baseline: %+v", d)
		}
	}
}

// TestCompareFlagsUpdateLatencyRegression: with a v2 baseline carrying
// update metrics, a large update-latency increase is a regression.
func TestCompareFlagsUpdateLatencyRegression(t *testing.T) {
	base := Report{SchemaVersion: SchemaVersion, Cells: []CellResult{{
		Cell: Cell{Family: "acl1", Size: 100, Skew: SkewUniform, Churn: ChurnHeavy, Backend: "tss"},
		Metrics: CellMetrics{P50Nanos: 100, P99Nanos: 400, ThroughputPPS: 1e6, MemoryBytes: 1000,
			UpdateP50Nanos: 10000, UpdateP99Nanos: 40000},
	}}}
	cand := base
	cand.Cells = []CellResult{base.Cells[0]}
	cand.Cells[0].Metrics.UpdateP50Nanos = 200000 // 20x: beyond 25% * churn slack 3
	cmp := Compare(base, cand, DefaultThresholds())
	found := false
	for _, d := range cmp.Regressions() {
		if d.Metric == "update_p50_ns" {
			found = true
		}
	}
	if !found {
		t.Fatalf("20x update p50 not flagged: %+v", cmp.Deltas)
	}
}

// TestMeasureUpdateSpeedup: the overlay write path must beat
// rebuild-per-update on a tree backend. The unit test asserts a modest 3x
// so it stays robust on loaded machines; the CI gate runs the full 10x via
// `perflab checkupdates`.
func TestMeasureUpdateSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := MeasureUpdateSpeedup("acl1", 800, "hicuts", 60, RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckUpdateSpeedup(res, 3); v != "" {
		t.Fatalf("speedup check failed: %s", v)
	}
	if v := CheckUpdateSpeedup(res, res.Factor*2); v == "" {
		t.Fatal("unattainable factor not flagged")
	}
}
