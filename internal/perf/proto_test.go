package perf

import "testing"

// TestMeasureProtoThroughput smoke-runs the wire-protocol perf cell on a
// tiny workload: all three rates must come out positive and the JSON-facing
// fields populated.
func TestMeasureProtoThroughput(t *testing.T) {
	res, err := MeasureProtoThroughput("acl1", 100, "tss", 2000, 256, 1, RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.V1PacketsPerSec <= 0 || res.V2PacketsPerSec <= 0 || res.EnginePacketsPerSec <= 0 {
		t.Fatalf("non-positive rates: %+v", res)
	}
	if res.Factor <= 0 {
		t.Fatalf("factor not derived: %+v", res)
	}
	if res.Family != "acl1" || res.Size != 100 || res.Backend != "tss" || res.BatchSize != 256 {
		t.Fatalf("identity fields wrong: %+v", res)
	}
	if v := CheckProtoThroughput(res, 0); v != "" {
		t.Fatalf("min-factor 0 must never violate, got %q", v)
	}
	if v := CheckProtoThroughput(ProtoComparison{Factor: 0.5, V1PacketsPerSec: 1, V2PacketsPerSec: 0.5}, 1); v == "" {
		t.Fatal("expected a violation below min-factor")
	}
}
