package perf

import (
	"strings"
	"testing"
)

// TestMeasureTelemetryOverhead: the telemetry cell must actually arm the
// instrumented engine (histogram samples and flight-recorder captures both
// non-zero) and must see zero steady-state allocations per batch on both
// configurations — the same contract the CI gate enforces, minus the latency
// bound, which a loaded test machine cannot assert reliably.
func TestMeasureTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := MeasureTelemetryOverhead("acl1", 500, "tss", 16, 64, 2, RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.HistogramSamples == 0 {
		t.Error("armed engine recorded no histogram samples")
	}
	if res.SlowCaptured == 0 {
		t.Error("flight recorder at threshold 0 captured nothing")
	}
	if res.OffP50Nanos <= 0 || res.OnP50Nanos <= 0 {
		t.Errorf("p50s off=%.0f on=%.0f, want positive", res.OffP50Nanos, res.OnP50Nanos)
	}
	if res.OffP99Nanos < res.OffP50Nanos || res.OnP99Nanos < res.OnP50Nanos {
		t.Errorf("p99 below p50: off %.0f/%.0f on %.0f/%.0f",
			res.OffP50Nanos, res.OffP99Nanos, res.OnP50Nanos, res.OnP99Nanos)
	}
	if res.OffAllocsPerBatch != 0 || res.OnAllocsPerBatch != 0 {
		t.Errorf("steady-state allocs per batch: off=%.2f on=%.2f, want 0 and 0",
			res.OffAllocsPerBatch, res.OnAllocsPerBatch)
	}
	if v := CheckTelemetry(res, 0); v != "" {
		t.Errorf("report-only check flagged a healthy run: %s", v)
	}
}

// TestCheckTelemetryViolations: each leg of the gate fires with a message
// naming the broken quantity.
func TestCheckTelemetryViolations(t *testing.T) {
	healthy := TelemetryOverhead{
		Family: "acl1", Size: 10000, Backend: "hicuts", Batches: 96, BatchSize: 512,
		OffP50Nanos: 10000, OnP50Nanos: 10300, OverheadPct: 3,
		HistogramSamples: 96, SlowCaptured: 96,
	}
	if v := CheckTelemetry(healthy, 5); v != "" {
		t.Fatalf("healthy run flagged: %s", v)
	}

	unarmed := healthy
	unarmed.HistogramSamples = 0
	if v := CheckTelemetry(unarmed, 5); !strings.Contains(v, "recorded nothing") {
		t.Errorf("unarmed run: %q", v)
	}

	leaky := healthy
	leaky.OnAllocsPerBatch, leaky.AllocsDelta = 2, 2
	if v := CheckTelemetry(leaky, 5); !strings.Contains(v, "allocates on the hot path") {
		t.Errorf("alloc delta: %q", v)
	}
	// The alloc contract holds even in report-only latency mode.
	if v := CheckTelemetry(leaky, 0); v == "" {
		t.Error("alloc delta ignored at max-overhead-pct 0")
	}

	slow := healthy
	slow.OnP50Nanos, slow.OverheadPct = 12000, 20
	if v := CheckTelemetry(slow, 5); !strings.Contains(v, "want <= 5.0%") {
		t.Errorf("overhead: %q", v)
	}
	if v := CheckTelemetry(slow, 0); v != "" {
		t.Errorf("report-only mode gated latency: %q", v)
	}
}
