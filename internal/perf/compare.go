package perf

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Thresholds configures what Compare counts as a regression. Percentages
// are relative increases (or, for throughput, decreases); AllocsDelta is an
// absolute allowance on allocations per op.
type Thresholds struct {
	// LatencyPct flags p50 increases beyond this percentage.
	LatencyPct float64 `json:"latency_pct"`
	// TailLatencyPct flags p99 increases beyond this percentage. The p99 of
	// a 10k-sample loop is the 100th-worst sample — dominated by scheduler
	// preemption and timer jitter rather than by the code under test, so
	// run-to-run movement of 3-4x is ordinary even on a quiet machine. The
	// tail band is therefore wide and only catches order-of-magnitude
	// collapses (a new lock on the read path, a rebuild stall); the precise
	// latency gate is the median.
	TailLatencyPct float64 `json:"tail_latency_pct"`
	// ThroughputPct flags throughput decreases beyond this percentage.
	ThroughputPct float64 `json:"throughput_pct"`
	// MemoryPct flags memory-footprint increases beyond this percentage.
	MemoryPct float64 `json:"memory_pct"`
	// AllocsDelta flags allocs/op increases beyond this absolute amount;
	// the CI gate runs with 0, i.e. any new allocation on the hot path
	// fails the build.
	AllocsDelta float64 `json:"allocs_delta"`
	// ChurnSlackFactor widens the three timing thresholds (latency, tail,
	// throughput) for churn cells by this multiple. Timing under a
	// concurrent rebuild writer is dominated by interference luck, so
	// churn cells keep only coarse timing protection (a genuine multi-x
	// collapse still fails) while allocs and memory stay strict. 0 selects
	// 3.
	ChurnSlackFactor float64 `json:"churn_slack_factor"`
}

// DefaultThresholds matches the CI bench gate: >25% median latency or
// throughput movement, >400% (5x) tail movement, >25% memory growth, and
// any allocs/op increase at all.
func DefaultThresholds() Thresholds {
	return Thresholds{LatencyPct: 25, TailLatencyPct: 400, ThroughputPct: 25,
		MemoryPct: 25, AllocsDelta: 0, ChurnSlackFactor: 3}
}

// Delta is one metric's movement on one cell.
type Delta struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Pct is the relative change in percent ((new-old)/old*100); 0 when old
	// is 0.
	Pct float64 `json:"pct"`
	// Regression marks deltas that breached their threshold.
	Regression bool `json:"regression"`
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	Thresholds Thresholds `json:"thresholds"`
	// Deltas lists every compared metric on every matched cell.
	Deltas []Delta `json:"deltas"`
	// MissingCells are scenarios present in the old report but absent from
	// the new one; losing coverage fails the gate.
	MissingCells []string `json:"missing_cells"`
	// NewCells are scenarios only the new report has (informational).
	NewCells []string `json:"new_cells"`
}

// Regressions returns only the deltas that breached a threshold.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the comparison is free of regressions and coverage
// loss.
func (c Comparison) OK() bool {
	return len(c.Regressions()) == 0 && len(c.MissingCells) == 0
}

// Compare diffs two reports cell by cell. Cells are matched by canonical
// scenario name; per-metric deltas breaching the thresholds are marked as
// regressions.
func Compare(old, cand Report, th Thresholds) Comparison {
	cmp := Comparison{Thresholds: th}
	newByName := map[string]CellResult{}
	for _, c := range cand.Cells {
		newByName[c.Cell.Name()] = c
	}
	oldNames := map[string]bool{}
	for _, oc := range old.Cells {
		name := oc.Cell.Name()
		oldNames[name] = true
		nc, ok := newByName[name]
		if !ok {
			cmp.MissingCells = append(cmp.MissingCells, name)
			continue
		}
		om, nm := oc.Metrics, nc.Metrics
		slack := 1.0
		if oc.Cell.Churn == ChurnUpdates || oc.Cell.Churn == ChurnHeavy {
			slack = th.ChurnSlackFactor
			if slack <= 0 {
				slack = 3
			}
		}
		cmp.add(name, "p50_nanos", om.P50Nanos, nm.P50Nanos,
			increaseBeyondPct(om.P50Nanos, nm.P50Nanos, th.LatencyPct*slack))
		cmp.add(name, "p99_nanos", om.P99Nanos, nm.P99Nanos,
			increaseBeyondPct(om.P99Nanos, nm.P99Nanos, th.TailLatencyPct*slack))
		cmp.add(name, "throughput_pps", om.ThroughputPPS, nm.ThroughputPPS,
			decreaseBeyondPct(om.ThroughputPPS, nm.ThroughputPPS, minFloat(th.ThroughputPct*slack, 95)))
		cmp.add(name, "memory_bytes", float64(om.MemoryBytes), float64(nm.MemoryBytes),
			increaseBeyondPct(float64(om.MemoryBytes), float64(nm.MemoryBytes), th.MemoryPct))
		cmp.add(name, "allocs_per_op", om.AllocsPerOp, nm.AllocsPerOp,
			nm.AllocsPerOp > om.AllocsPerOp+th.AllocsDelta)
		// Update-path latency (schema v2): only gated when the baseline has
		// the metric — a v1 baseline carries 0 and increaseBeyondPct treats
		// a non-positive old value as "no baseline", keeping Compare
		// backward-compatible. Updates run concurrently with measurement
		// traffic, so they use the same widened (churn-slack) bands as the
		// other timing metrics on churn cells.
		if om.UpdateP50Nanos > 0 || nm.UpdateP50Nanos > 0 {
			cmp.add(name, "update_p50_ns", om.UpdateP50Nanos, nm.UpdateP50Nanos,
				increaseBeyondPct(om.UpdateP50Nanos, nm.UpdateP50Nanos, th.LatencyPct*slack))
			cmp.add(name, "update_p99_ns", om.UpdateP99Nanos, nm.UpdateP99Nanos,
				increaseBeyondPct(om.UpdateP99Nanos, nm.UpdateP99Nanos, th.TailLatencyPct*slack))
		}
	}
	for name := range newByName {
		if !oldNames[name] {
			cmp.NewCells = append(cmp.NewCells, name)
		}
	}
	return cmp
}

func (c *Comparison) add(cell, metric string, oldV, newV float64, regressed bool) {
	d := Delta{Cell: cell, Metric: metric, Old: oldV, New: newV, Regression: regressed}
	if oldV != 0 {
		d.Pct = (newV - oldV) / oldV * 100
	}
	c.Deltas = append(c.Deltas, d)
}

func increaseBeyondPct(oldV, newV, pct float64) bool {
	if oldV <= 0 {
		return false
	}
	return newV > oldV*(1+pct/100)
}

func decreaseBeyondPct(oldV, newV, pct float64) bool {
	if oldV <= 0 {
		return false
	}
	return newV < oldV*(1-pct/100)
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Write renders the comparison as text: regressions and coverage changes
// first, then the full delta table.
func (c Comparison) Write(w io.Writer) {
	regs := c.Regressions()
	if len(regs) == 0 && len(c.MissingCells) == 0 {
		fmt.Fprintln(w, "compare: no regressions")
	}
	for _, name := range c.MissingCells {
		fmt.Fprintf(w, "REGRESSION %s: scenario missing from new report\n", name)
	}
	for _, d := range regs {
		fmt.Fprintf(w, "REGRESSION %s %s: %.2f -> %.2f (%+.1f%%)\n", d.Cell, d.Metric, d.Old, d.New, d.Pct)
	}
	for _, name := range c.NewCells {
		fmt.Fprintf(w, "note: new scenario %s (no baseline)\n", name)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tmetric\told\tnew\tdelta")
	for _, d := range c.Deltas {
		flag := ""
		if d.Regression {
			flag = "  <-- REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%+.1f%%%s\n", d.Cell, d.Metric, d.Old, d.New, d.Pct, flag)
	}
	tw.Flush()
}
