package perf

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/engine"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

// Run measures every cell of the grid and returns the assembled report.
// progress, when non-nil, receives one line per completed cell (cmd/perflab
// passes os.Stderr; tests pass nil).
func Run(grid Grid, cfg RunConfig, progress io.Writer) (Report, error) {
	cfg = cfg.WithDefaults()
	rep := Report{SchemaVersion: SchemaVersion, Tool: "perflab", Grid: grid, Config: cfg}
	cells := grid.Cells()
	if len(cells) == 0 {
		return rep, fmt.Errorf("perf: empty grid")
	}
	for i, cell := range cells {
		start := time.Now()
		res, err := MeasureCell(cell, cfg)
		if err != nil {
			return rep, fmt.Errorf("perf: %s: %w", cell.Name(), err)
		}
		rep.Cells = append(rep.Cells, res)
		if progress != nil {
			fmt.Fprintf(progress, "[%d/%d] %-40s p50=%.0fns p99=%.0fns %.2fMpps allocs/op=%.2f (%s)\n",
				i+1, len(cells), cell.Name(), res.Metrics.P50Nanos, res.Metrics.P99Nanos,
				res.Metrics.ThroughputPPS/1e6, res.Metrics.AllocsPerOp,
				time.Since(start).Round(time.Millisecond))
		}
	}
	rep.SortCells()
	return rep, nil
}

// MeasureCell builds the cell's classifier and measures it under the cell's
// traffic and churn model. Exported so internal/bench can render its tables
// from the exact measurements the JSON artifacts carry.
func MeasureCell(cell Cell, cfg RunConfig) (CellResult, error) {
	cfg = cfg.WithDefaults()
	fam, err := classbench.FamilyByName(cell.Family)
	if err != nil {
		return CellResult{}, err
	}
	set := classbench.Generate(fam, cell.Size, cfg.Seed)

	opts := engine.Options{Shards: cfg.Shards, Binth: cfg.Binth, FlowCacheEntries: cfg.FlowCacheEntries,
		LegacyTreeLookup: cell.Lookup == LookupLegacy,
		// Update-heavy cells measure the delta-overlay write path; the other
		// churn mode keeps measuring rebuild-per-update for comparison.
		OnlineUpdates: cell.Churn == ChurnHeavy}
	buildStart := time.Now()
	eng, err := engine.NewEngine(cell.Backend, set, opts)
	if err != nil {
		return CellResult{}, err
	}
	buildNanos := time.Since(buildStart).Nanoseconds()
	defer eng.Close()
	if cfg.OnEngine != nil {
		// Stats reads are atomics, so the observer may keep scraping this
		// engine even after the cell tears it down.
		cfg.OnEngine(cell.Name(), eng)
	}

	keys := cellTrace(cell, set, cfg)
	if len(keys) == 0 {
		return CellResult{}, fmt.Errorf("empty trace")
	}

	var m CellMetrics
	m.BuildNanos = buildNanos
	em := eng.Metrics()
	m.MemoryBytes = em.MemoryBytes
	m.LookupCost = em.LookupCost
	m.Entries = em.Entries
	m.Rules = em.Rules

	// Warmup: touch the trace once so caches, pools and lazily started
	// workers are in steady state before anything is measured.
	warm := cfg.Warmup
	if warm > len(keys) {
		warm = len(keys)
	}
	for _, p := range keys[:warm] {
		eng.Classify(p)
	}

	// Allocations per op, measured on the read-only path before the churn
	// writer starts (a concurrent rebuild would pollute the global
	// allocation counters with its own work).
	m.AllocsPerOp = measureAllocs(eng, keys, cfg.Ops)

	// Churn: a background writer inserts a clone of the hottest rule and
	// deletes it again, over and over, through the engine's atomic snapshot
	// swap (a rebuild per update for "churn" cells, the delta overlay for
	// "updateheavy" cells). Lookups below run against whatever snapshot is
	// current.
	var stopChurn func() churnResult
	if cell.Churn == ChurnUpdates || cell.Churn == ChurnHeavy {
		pace := 200 * time.Microsecond
		if cell.Churn == ChurnHeavy {
			// The overlay write path is cheap; pace just enough that readers
			// still get scheduled.
			pace = 20 * time.Microsecond
		}
		stopChurn = startChurn(eng, set, pace)
	}

	// Timing measurements, best of cfg.Runs passes: per-percentile minimum
	// latency and maximum throughput. One-sided noise (scheduler
	// preemption, churn-rebuild interference) inflates individual passes; a
	// real regression slows all of them, so the best-of survives the gate's
	// thresholds while noise does not.
	durations := make([]int64, cfg.Ops)
	for pass := 0; pass < cfg.Runs; pass++ {
		for i := 0; i < cfg.Ops; i++ {
			p := keys[i%len(keys)]
			t0 := time.Now()
			eng.Classify(p)
			durations[i] = time.Since(t0).Nanoseconds()
		}
		sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
		p50 := percentile(durations, 0.50)
		p99 := percentile(durations, 0.99)
		if pass == 0 || p50 < m.P50Nanos {
			m.P50Nanos = p50
		}
		if pass == 0 || p99 < m.P99Nanos {
			m.P99Nanos = p99
		}
	}

	// Batched throughput over pooled buffers.
	batch := cfg.BatchSize
	if batch > len(keys) {
		batch = len(keys)
	}
	out := engine.GetResultBuf(batch)
	for pass := 0; pass < cfg.Runs; pass++ {
		done := 0
		tpStart := time.Now()
		for done < cfg.Ops {
			lo := done % (len(keys) - batch + 1)
			eng.ClassifyBatch(keys[lo:lo+batch], out)
			done += batch
		}
		elapsed := time.Since(tpStart).Seconds()
		if elapsed > 0 {
			if pps := float64(done) / elapsed; pps > m.ThroughputPPS {
				m.ThroughputPPS = pps
			}
		}
	}
	engine.PutResultBuf(out)

	if stopChurn != nil {
		cr := stopChurn()
		m.Updates = cr.updates
		m.UpdateP50Nanos = cr.p50
		m.UpdateP99Nanos = cr.p99
	}
	if hits, misses := eng.CacheStats(); hits+misses > 0 {
		m.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return CellResult{Cell: cell, Metrics: m}, nil
}

// cellTrace generates the cell's packet trace according to its skew axis.
func cellTrace(cell Cell, set *rule.Set, cfg RunConfig) []rule.Packet {
	var entries []packet.TraceEntry
	switch cell.Skew {
	case SkewZipf:
		entries = classbench.ZipfTrace(set, cfg.Packets, cfg.Flows, cfg.ZipfSkew, cfg.Seed+101)
	default:
		entries = classbench.UniformTrace(set, cfg.Packets, cfg.Seed+101)
	}
	keys := make([]rule.Packet, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	return keys
}

// measureAllocs reports heap allocations per single-packet lookup using the
// runtime's global allocation counter. The counter is process-wide, so a
// stray background allocation (GC bookkeeping, a late-initialised pool) can
// bleed into one pass; taking the minimum of several passes and squashing
// sub-0.01 residue keeps the metric exact — a real hot-path regression adds
// at least one alloc per op, three orders of magnitude above the noise
// floor.
func measureAllocs(eng *engine.Engine, keys []rule.Packet, ops int) float64 {
	if ops <= 0 {
		return 0
	}
	const passes = 3
	best := -1.0
	var before, after runtime.MemStats
	for p := 0; p < passes; p++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < ops; i++ {
			eng.Classify(keys[i%len(keys)])
		}
		runtime.ReadMemStats(&after)
		got := float64(after.Mallocs-before.Mallocs) / float64(ops)
		if best < 0 || got < best {
			best = got
		}
	}
	if best < 0.01 {
		return 0
	}
	return best
}

// churnResult is what the background writer reports when stopped: how many
// updates it applied and the per-update latency percentiles (one sample per
// Insert or Delete call).
type churnResult struct {
	updates  int
	p50, p99 float64
}

// maxChurnSamples bounds the writer's latency sample buffer.
const maxChurnSamples = 1 << 16

// startChurn launches the background writer and returns a function that
// stops it and reports the applied updates and their latency percentiles.
func startChurn(eng *engine.Engine, set *rule.Set, pace time.Duration) func() churnResult {
	var stop atomic.Bool
	doneCh := make(chan churnResult, 1)
	started := make(chan struct{})
	template := set.Rule(0)
	go func() {
		updates := 0
		// Decimating sampler: when the buffer fills, keep every other
		// retained sample and double the stride, so the final set covers
		// the whole run uniformly. Keeping only the first N would bias the
		// gated percentiles toward the warm-up window and hide late-run
		// latency regressions.
		samples := make([]int64, 0, maxChurnSamples)
		stride, tick := 1, 0
		record := func(d time.Duration) {
			tick++
			if tick%stride != 0 {
				return
			}
			if len(samples) == maxChurnSamples {
				for i := 0; i < maxChurnSamples/2; i++ {
					samples[i] = samples[2*i]
				}
				samples = samples[:maxChurnSamples/2]
				stride *= 2
			}
			samples = append(samples, d.Nanoseconds())
		}
		for !stop.Load() {
			t0 := time.Now()
			res, err := eng.Insert(0, template)
			record(time.Since(t0))
			if err != nil {
				break
			}
			updates++
			t0 = time.Now()
			_, err = eng.Delete(res.ID)
			record(time.Since(t0))
			if err != nil {
				break
			}
			updates++
			if updates == 2 {
				// Guarantee the measured lookups really overlap at least
				// one snapshot swap, even when the measurement loop is
				// shorter than the scheduler's first slice for this
				// goroutine.
				close(started)
			}
			// Pace the writer: back-to-back rebuilds would turn the cell
			// into a rebuild benchmark and make tail latency depend almost
			// entirely on swap timing luck.
			time.Sleep(pace)
		}
		if updates < 2 {
			close(started)
		}
		res := churnResult{updates: updates}
		if len(samples) > 0 {
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			res.p50 = percentile(samples, 0.50)
			res.p99 = percentile(samples, 0.99)
		}
		doneCh <- res
	}()
	<-started
	return func() churnResult {
		stop.Store(true)
		return <-doneCh
	}
}

// percentile returns the q-quantile (0..1) of sorted nanosecond samples.
func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx])
}
