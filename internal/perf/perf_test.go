package perf

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testGrid is a small but axis-complete grid: 2 families x 1 size x 2 skews
// x 1 churn mode x 2 backends = 8 cells, fast enough for the test suite.
func testGrid() Grid {
	return Grid{
		Families: []string{"acl1", "fw1"},
		Sizes:    []int{120},
		Skews:    []Skew{SkewUniform, SkewZipf},
		Churns:   []Churn{ChurnNone},
		Backends: []string{"linear", "tss"},
	}
}

func testConfig() RunConfig {
	return RunConfig{Seed: 1, Packets: 512, Ops: 400, Warmup: 100,
		Flows: 32, ZipfSkew: 1.2, BatchSize: 64, Shards: 1}
}

func TestRunGoldenDeterministicJSON(t *testing.T) {
	rep, err := Run(testGrid(), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(rep.Cells))
	}

	// Schema validity: the artifact round-trips through the reader with the
	// expected version and required fields present.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	if err := WriteArtifact(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", back.SchemaVersion)
	}
	var raw map[string]any
	data, _ := os.ReadFile(path)
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "tool", "grid", "config", "cells"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("artifact missing top-level key %q", key)
		}
	}

	// Determinism: a second run with the same seed must agree on every
	// structural field (the canonical form zeroes the timing fields).
	again, err := Run(testGrid(), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.MarshalIndent(rep.Canonical(), "", "  ")
	b, _ := json.MarshalIndent(again.Canonical(), "", "  ")
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different canonical reports:\n%s\n--- vs ---\n%s", a, b)
	}

	// Golden file: the canonical JSON is pinned, so schema or generator
	// drift is caught by the suite (refresh with `go test ./internal/perf
	// -run Golden -update`).
	golden := filepath.Join("testdata", "golden_report.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(a, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(a)) {
		t.Errorf("canonical report drifted from golden file; rerun with -update if intentional")
	}

	// Timing fields must actually be populated in the live report.
	for _, c := range rep.Cells {
		if c.Metrics.P50Nanos <= 0 || c.Metrics.ThroughputPPS <= 0 {
			t.Errorf("%s: unmeasured timing fields %+v", c.Cell.Name(), c.Metrics)
		}
		if c.Metrics.Rules <= 0 || c.Metrics.MemoryBytes <= 0 {
			t.Errorf("%s: degenerate structural fields %+v", c.Cell.Name(), c.Metrics)
		}
	}
}

func TestCellNamesAndGridExpansion(t *testing.T) {
	g := CIGrid()
	cells := g.Cells()
	if len(cells) != 36 {
		t.Fatalf("CI grid has %d cells, want 36 (3 families x 1 size x 2 skews x 3 churns x 2 backends)", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		name := c.Name()
		if seen[name] {
			t.Fatalf("duplicate cell name %s", name)
		}
		seen[name] = true
	}
	c := Cell{Family: "acl1", Size: 1000, Skew: SkewZipf, Churn: ChurnUpdates, Backend: "tss"}
	if got := c.Name(); got != "acl1_1k_zipf_churn_tss" {
		t.Errorf("Name() = %q", got)
	}
	if got := ArtifactName(c); got != "BENCH_acl1_1k_zipf_churn_tss.json" {
		t.Errorf("ArtifactName() = %q", got)
	}
}

func TestChurnCellAppliesUpdates(t *testing.T) {
	cell := Cell{Family: "acl1", Size: 100, Skew: SkewZipf, Churn: ChurnUpdates, Backend: "linear"}
	res, err := MeasureCell(cell, RunConfig{Seed: 1, Packets: 256, Ops: 3000, Warmup: 50,
		Flows: 16, ZipfSkew: 1.2, BatchSize: 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Updates == 0 {
		t.Error("churn cell applied no updates")
	}
}

func TestReadArtifactRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 999, "cells": [{}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("expected schema-version error, got %v", err)
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"schema_version": 1, "cells": []}`), 0o644)
	if _, err := ReadArtifact(empty); err == nil {
		t.Fatal("expected error for empty report")
	}
}
