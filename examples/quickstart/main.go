// Quickstart: generate a small classifier, train NeuroCuts on it for a few
// seconds, and use the learned decision tree to classify packets — both
// 5-tuple keys and raw wire-format IPv4 headers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/packet"
	"neurocuts/internal/rule"
)

func main() {
	// 1. Get a classifier. Here we generate an ACL-style rule set; in a real
	//    deployment you would parse one with rule.ParseClassBench.
	family, err := classbench.FamilyByName("acl1")
	if err != nil {
		log.Fatal(err)
	}
	rules := classbench.Generate(family, 300, 42)
	fmt.Printf("classifier: %d rules (%s family)\n", rules.Len(), family.Name)

	// 2. Train NeuroCuts. Scaled() keeps Table 1's algorithm but shrinks the
	//    budgets so this example finishes in a few seconds; raise
	//    MaxTimesteps for better trees.
	cfg := core.Scaled(1000)
	cfg.TimeSpaceCoeff = 1.0 // optimise classification time
	cfg.MaxTimesteps = 3000
	cfg.BatchTimesteps = 600
	cfg.Seed = 7
	trainer := core.NewTrainer(rules, cfg)
	if _, err := trainer.Train(); err != nil {
		log.Fatal(err)
	}
	best, objective := trainer.BestTree()
	metrics := best.ComputeMetrics()
	fmt.Printf("learned tree: objective=%.0f  worst-case lookups=%d  bytes/rule=%.1f  nodes=%d\n",
		objective, metrics.ClassificationTime, metrics.BytesPerRule, metrics.Nodes)

	// 3. Classify 5-tuple keys with the learned tree.
	trace := classbench.GenerateTrace(rules, 5, 99)
	for _, entry := range trace {
		matched, ok := best.Classify(entry.Key)
		fmt.Printf("  %-55v -> rule #%d (ok=%v)\n", entry.Key, matched.Priority, ok)
	}

	// 4. Classify a raw wire-format packet: decode the IPv4/TCP headers into
	//    a key, then look it up.
	wire, err := packet.Serialize(rule.Packet{
		SrcIP: 0x0A000001, DstIP: 0xC0A80101, SrcPort: 44123, DstPort: 443, Proto: packet.ProtoTCP,
	})
	if err != nil {
		log.Fatal(err)
	}
	key, err := packet.Decode(wire)
	if err != nil {
		log.Fatal(err)
	}
	matched, ok := best.Classify(key)
	fmt.Printf("wire packet %v -> rule #%d (ok=%v)\n", key, matched.Priority, ok)

	// 5. The tree is exact: it always agrees with linear search.
	check := classbench.UniformTrace(rules, 10000, 1)
	for _, e := range check {
		got, ok := best.Classify(e.Key)
		if !ok || got.Priority != e.MatchRule {
			log.Fatalf("mismatch on %v", e.Key)
		}
	}
	fmt.Println("verified: tree classification matches linear search on 10,000 random packets")
}
