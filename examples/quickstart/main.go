// Quickstart: embed the classifier SDK in a Go program — generate a small
// rule set, train NeuroCuts on it for a few seconds, and use the learned
// decision tree to classify packets, both 5-tuple keys and raw wire-format
// IPv4 headers. Only the public neurocuts/pkg/classifier API is used; this
// is exactly what an external program can do.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"neurocuts/pkg/classifier"
)

func main() {
	ctx := context.Background()

	// 1. Get a classifier. Here we generate an ACL-style rule set; in a real
	//    deployment you would parse one with classifier.ParseRules.
	rules, err := classifier.GenerateRules("acl1", 300, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier: %d rules (acl1 family)\n", rules.Len())

	// 2. Open it with the NeuroCuts backend. The training budget is kept
	//    small so the example finishes in a few seconds; raise it for better
	//    trees. WithBackend accepts any name in classifier.Backends().
	c, err := classifier.Open(rules,
		classifier.WithBackend("neurocuts"),
		classifier.WithTrainingBudget(3000),
		classifier.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	m := c.Stats().Metrics
	fmt.Printf("learned tree: worst-case lookups=%d  bytes/rule=%.1f\n", m.LookupCost, m.BytesPerRule)

	// 3. Classify 5-tuple keys with the learned tree.
	for _, key := range classifier.GenerateTrace(rules, 5, 99) {
		match, ok, err := c.Classify(ctx, key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-55v -> rule #%d (ok=%v)\n", key, match.Priority, ok)
	}

	// 4. Classify a raw wire-format packet: decode the IPv4/TCP headers into
	//    a key, then look it up.
	wire, err := classifier.EncodePacket(classifier.Packet{
		SrcIP: 0x0A000001, DstIP: 0xC0A80101, SrcPort: 44123, DstPort: 443, Proto: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	key, err := classifier.DecodePacket(wire)
	if err != nil {
		log.Fatal(err)
	}
	match, ok, err := c.Classify(ctx, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire packet %v -> rule #%d (ok=%v)\n", key, match.Priority, ok)

	// 5. The tree is exact: it always agrees with linear search over the
	//    rule set, here checked on a batch of 10,000 random packets.
	check := classifier.GenerateTrace(rules, 10000, 1)
	results, err := c.ClassifyBatch(ctx, check)
	if err != nil {
		log.Fatal(err)
	}
	for i, key := range check {
		want, wantOK := rules.Match(key)
		if results[i].OK != wantOK || (wantOK && results[i].Rule.Priority != want.Priority) {
			log.Fatalf("mismatch on %v", key)
		}
	}
	fmt.Println("verified: tree classification matches linear search on 10,000 random packets")
}
