// Observability: embed the classifier's HTTP admin plane in a Go program.
// The SDK's AdminHandler exposes everything a monitoring stack needs —
// Prometheus-format metrics (lookup counters, flow-cache effectiveness, the
// online-update subsystem's overlay/compaction/journal state), liveness and
// readiness probes, and the standard pprof profiling endpoints — with no
// client-library dependency, so any Prometheus-compatible scraper can watch
// an embedded classifier exactly as it watches classifyd -admin.
//
// This example mounts the handler on a loopback listener, drives some
// traffic and updates through the classifier, then scrapes its own /metrics
// and prints the neurocuts_* samples.
//
// Run with:
//
//	go run ./examples/observability
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"neurocuts/pkg/classifier"
)

func main() {
	ctx := context.Background()
	rules, err := classifier.GenerateRules("acl1", 1000, 1)
	if err != nil {
		log.Fatal(err)
	}
	c, err := classifier.Open(rules,
		classifier.WithBackend("hicuts"),
		classifier.WithOnlineUpdates(),
		classifier.WithFlowCache(4096))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Mount the admin plane on a loopback listener. A real service would
	// pick a fixed management port (and typically keep it loopback- or
	// cluster-internal-only); :0 keeps the example self-contained.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: c.AdminHandler()}
	go srv.Serve(ln)
	defer srv.Shutdown(ctx)
	fmt.Printf("admin plane on http://%s (metrics, healthz, readyz, tables, debug/pprof)\n\n", ln.Addr())

	// Drive some work so the counters have something to say: lookups (the
	// repeats hit the flow cache) and a couple of live updates.
	keys := classifier.GenerateTrace(rules, 2000, 7)
	for pass := 0; pass < 2; pass++ {
		if _, err := c.ClassifyBatch(ctx, keys); err != nil {
			log.Fatal(err)
		}
	}
	res, err := c.Insert(0, rules.Rule(1))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Delete(res.ID); err != nil {
		log.Fatal(err)
	}

	// Scrape ourselves, exactly as Prometheus would.
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("scraped /metrics (neurocuts_* samples):")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "neurocuts_") {
			fmt.Println(" ", line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
