// Firewall comparison: build every algorithm in the repository — HiCuts,
// HyperCuts, EffiCuts, CutSplit and NeuroCuts — over the same firewall-style
// classifier (the wildcard-heavy workload the paper's introduction motivates
// with access control and firewall deployments) and compare classification
// time and memory footprint side by side.
//
// Run with:
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/cutsplit"
	"neurocuts/internal/efficuts"
	"neurocuts/internal/env"
	"neurocuts/internal/hicuts"
	"neurocuts/internal/hypercuts"
	"neurocuts/internal/rule"
	"neurocuts/internal/tree"
)

type result struct {
	name     string
	time     int
	bytes    float64
	build    time.Duration
	classify func(rule.Packet) (rule.Rule, bool)
}

func main() {
	family, err := classbench.FamilyByName("fw2")
	if err != nil {
		log.Fatal(err)
	}
	rules := classbench.Generate(family, 500, 3)
	fmt.Printf("firewall classifier: %d rules\n\n", rules.Len())

	var results []result

	timed := func(name string, build func() (func(rule.Packet) (rule.Rule, bool), tree.Metrics, error)) {
		start := time.Now()
		classify, m, err := build()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		results = append(results, result{
			name: name, time: m.ClassificationTime, bytes: m.BytesPerRule,
			build: time.Since(start), classify: classify,
		})
	}

	timed("HiCuts", func() (func(rule.Packet) (rule.Rule, bool), tree.Metrics, error) {
		t, err := hicuts.Build(rules, hicuts.DefaultConfig())
		if err != nil {
			return nil, tree.Metrics{}, err
		}
		return t.Classify, t.ComputeMetrics(), nil
	})
	timed("HyperCuts", func() (func(rule.Packet) (rule.Rule, bool), tree.Metrics, error) {
		t, err := hypercuts.Build(rules, hypercuts.DefaultConfig())
		if err != nil {
			return nil, tree.Metrics{}, err
		}
		return t.Classify, t.ComputeMetrics(), nil
	})
	timed("EffiCuts", func() (func(rule.Packet) (rule.Rule, bool), tree.Metrics, error) {
		c, err := efficuts.Build(rules, efficuts.DefaultConfig())
		if err != nil {
			return nil, tree.Metrics{}, err
		}
		return c.Classify, c.Metrics(), nil
	})
	timed("CutSplit", func() (func(rule.Packet) (rule.Rule, bool), tree.Metrics, error) {
		c, err := cutsplit.Build(rules, cutsplit.DefaultConfig())
		if err != nil {
			return nil, tree.Metrics{}, err
		}
		return c.Classify, c.Metrics(), nil
	})
	timed("NeuroCuts", func() (func(rule.Packet) (rule.Rule, bool), tree.Metrics, error) {
		cfg := core.Scaled(1000)
		cfg.TimeSpaceCoeff = 1
		cfg.Partition = env.PartitionSimple
		cfg.MaxTimesteps = 6000
		cfg.BatchTimesteps = 1000
		cfg.Seed = 11
		trainer := core.NewTrainer(rules, cfg)
		if _, err := trainer.Train(); err != nil {
			return nil, tree.Metrics{}, err
		}
		best, _ := trainer.BestTree()
		return best.Classify, best.ComputeMetrics(), nil
	})

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tworst-case lookups\tbytes/rule\tbuild time")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%s\n", r.name, r.time, r.bytes, r.build.Round(time.Millisecond))
	}
	tw.Flush()

	// Every algorithm classifies a shared trace identically (perfect
	// accuracy by construction).
	trace := classbench.GenerateTrace(rules, 20000, 5)
	for _, r := range results {
		for _, e := range trace {
			got, ok := r.classify(e.Key)
			if !ok || got.Priority != e.MatchRule {
				log.Fatalf("%s misclassified %v", r.name, e.Key)
			}
		}
	}
	fmt.Printf("\nall %d algorithms agree with linear search on %d trace packets\n", len(results), len(trace))
}
