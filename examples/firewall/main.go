// Firewall comparison: open every tree algorithm in the repository —
// HiCuts, HyperCuts, EffiCuts, CutSplit and NeuroCuts — over the same
// firewall-style classifier (the wildcard-heavy workload the paper's
// introduction motivates with access control and firewall deployments) and
// compare classification time and memory footprint side by side, entirely
// through the public SDK.
//
// Run with:
//
//	go run ./examples/firewall
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"neurocuts/pkg/classifier"
)

func main() {
	ctx := context.Background()
	rules, err := classifier.GenerateRules("fw2", 500, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("firewall classifier: %d rules\n\n", rules.Len())

	type result struct {
		backend string
		c       *classifier.Classifier
		build   time.Duration
	}
	var results []result
	for _, backend := range []string{"hicuts", "hypercuts", "efficuts", "cutsplit", "neurocuts"} {
		start := time.Now()
		c, err := classifier.Open(rules,
			classifier.WithBackend(backend),
			classifier.WithTrainingBudget(6000), // neurocuts only; ignored elsewhere
			classifier.WithSeed(11))
		if err != nil {
			log.Fatalf("%s: %v", backend, err)
		}
		defer c.Close()
		results = append(results, result{backend: backend, c: c, build: time.Since(start)})
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tworst-case lookups\tbytes/rule\tbuild time")
	for _, r := range results {
		m := r.c.Stats().Metrics
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%s\n",
			classifier.BackendDisplayName(r.backend), m.LookupCost, m.BytesPerRule, r.build.Round(time.Millisecond))
	}
	tw.Flush()

	// Every algorithm classifies a shared trace identically (perfect
	// accuracy by construction — each agrees with linear search).
	trace := classifier.GenerateTrace(rules, 20000, 5)
	for _, r := range results {
		out, err := r.c.ClassifyBatch(ctx, trace)
		if err != nil {
			log.Fatal(err)
		}
		for i, key := range trace {
			want, wantOK := rules.Match(key)
			if out[i].OK != wantOK || (wantOK && out[i].Rule.Priority != want.Priority) {
				log.Fatalf("%s misclassified %v", r.backend, key)
			}
		}
	}
	fmt.Printf("\nall %d algorithms agree with linear search on %d trace packets\n", len(results), len(trace))
}
