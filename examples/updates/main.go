// Updates: demonstrate how a deployed NeuroCuts tree absorbs classifier
// updates (Section 4 of the paper): small rule insertions and deletions are
// applied to the existing tree in place without retraining, and the Updater
// flags when enough updates have accumulated that retraining is worthwhile.
//
// Run with:
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"

	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/rule"
)

func main() {
	family, err := classbench.FamilyByName("acl2")
	if err != nil {
		log.Fatal(err)
	}
	rules := classbench.Generate(family, 300, 9)
	fmt.Printf("initial classifier: %d rules\n", rules.Len())

	// Train once.
	cfg := core.Scaled(1000)
	cfg.MaxTimesteps = 3000
	cfg.BatchTimesteps = 600
	cfg.Seed = 21
	trainer := core.NewTrainer(rules, cfg)
	if _, err := trainer.Train(); err != nil {
		log.Fatal(err)
	}
	best, _ := trainer.BestTree()
	m := best.ComputeMetrics()
	fmt.Printf("trained tree: %d worst-case lookups, %.1f bytes/rule\n\n", m.ClassificationTime, m.BytesPerRule)

	// Operate the tree and apply incremental updates.
	updater := core.NewUpdater(best, 20)

	// A new access-control rule for a device that just joined the network:
	// block TCP/22 to a specific host, with priority above everything else.
	newRule := rule.NewWildcardRule(-1)
	newRule.Ranges[rule.DimDstIP] = rule.PrefixRange(0x0A00002A, 32, 32) // 10.0.0.42
	newRule.Ranges[rule.DimDstPort] = rule.Range{Lo: 22, Hi: 22}
	newRule.Ranges[rule.DimProto] = rule.Range{Lo: 6, Hi: 6}
	newRule.ID = 4242
	if err := updater.InsertRule(newRule); err != nil {
		log.Fatal(err)
	}
	fmt.Println("inserted a new highest-priority rule (block TCP/22 to 10.0.0.42) without retraining")

	// The new rule is live immediately.
	pkt := rule.Packet{SrcIP: 0xC0A80105, DstIP: 0x0A00002A, SrcPort: 50000, DstPort: 22, Proto: 6}
	matched, ok := best.Classify(pkt)
	fmt.Printf("  lookup %v -> rule ID %d (ok=%v)\n", pkt, matched.ID, ok)
	if !ok || matched.ID != 4242 {
		log.Fatal("the inserted rule should win this lookup")
	}

	// Retire an old rule.
	victim := rules.Len() / 3
	removed := updater.RemoveByPriority(victim)
	fmt.Printf("removed rule #%d from the tree (%d copies cleaned from leaves counted as %d rule)\n",
		victim, removed, removed)

	// Apply a burst of further updates and watch the retrain signal.
	for i := 0; i < 25 && !updater.NeedsRetrain(); i++ {
		r := rule.NewWildcardRule(-(i + 2))
		r.Ranges[rule.DimSrcPort] = rule.Range{Lo: uint64(30000 + i), Hi: uint64(30000 + i)}
		r.ID = 5000 + i
		if err := updater.InsertRule(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\napplied %d total updates; retraining recommended: %v\n", updater.Updates(), updater.NeedsRetrain())
	if updater.NeedsRetrain() {
		fmt.Println("=> at this point a deployment would re-run the trainer on the updated rule set")
	}
}
