// Updates: operate a live classifier through the public SDK's online-update
// subsystem — rule insertions and deletions land in a delta overlay with no
// rebuild on the write path, a background compactor folds them into the
// base structure, and a durable journal makes every acknowledged update
// survive a crash.
//
// Run with:
//
//	go run ./examples/updates
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"neurocuts/pkg/classifier"
)

func main() {
	ctx := context.Background()
	rules, err := classifier.GenerateRules("acl2", 300, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial classifier: %d rules\n", rules.Len())

	dir, err := os.MkdirTemp("", "classifier-updates")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "updates.journal")

	// Open with online updates and a durable journal: inserts and deletes
	// are acknowledged after hitting the journal, without rebuilding the
	// tree, and a restart over the same journal replays them.
	c, err := classifier.Open(rules,
		classifier.WithBackend("hicuts"),
		classifier.WithOnlineUpdates(),
		classifier.WithJournal(journal))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	m := c.Stats().Metrics
	fmt.Printf("built tree: %d worst-case lookups, %.1f bytes/rule\n\n", m.LookupCost, m.BytesPerRule)

	// A new access-control rule for a device that just joined the network:
	// block TCP/22 to a specific host, with priority above everything else.
	newRule := classifier.NewWildcardRule(-1)
	newRule.Ranges[classifier.DimDstIP] = classifier.PrefixRange(0x0A00002A, 32, 32) // 10.0.0.42
	newRule.Ranges[classifier.DimDstPort] = classifier.Range{Lo: 22, Hi: 22}
	newRule.Ranges[classifier.DimProto] = classifier.Range{Lo: 6, Hi: 6}
	res, err := c.Insert(0, newRule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inserted a new highest-priority rule (block TCP/22 to 10.0.0.42) without rebuilding")

	// The new rule is live immediately.
	pkt := classifier.Packet{SrcIP: 0xC0A80105, DstIP: 0x0A00002A, SrcPort: 50000, DstPort: 22, Proto: 6}
	match, ok, err := c.Classify(ctx, pkt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  lookup %v -> rule ID %d (ok=%v)\n", pkt, match.ID, ok)
	if !ok || match.ID != res.ID {
		log.Fatal("the inserted rule should win this lookup")
	}

	// Retire an old rule: IDs for rules present at Open are their list
	// positions.
	victim := rules.Len() / 3
	if _, err := c.Delete(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted rule #%d (a tombstone in the overlay; no rebuild)\n", victim)

	// Apply a burst of further updates and watch the pending delta grow;
	// when it crosses the compaction threshold, a background rebuild folds
	// it into the base structure off the critical path.
	for i := 0; i < 25; i++ {
		r := classifier.NewWildcardRule(-(i + 2))
		r.Ranges[classifier.DimSrcPort] = classifier.Range{Lo: uint64(30000 + i), Hi: uint64(30000 + i)}
		if _, err := c.Insert(0, r); err != nil {
			log.Fatal(err)
		}
	}
	st := c.Stats()
	fmt.Printf("\napplied %d journaled updates; pending in overlay: %d, compactions so far: %d\n",
		st.JournalRecords, st.PendingUpdates, st.Compactions)
	fmt.Printf("journal at %s makes every acknowledged update crash-durable\n", st.JournalPath)
}
