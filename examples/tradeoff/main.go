// Tradeoff: sweep the time-space coefficient c (Equation 5) and show how
// NeuroCuts interpolates between time-optimised and space-optimised trees —
// a miniature version of Figure 11, driven entirely through the public SDK's
// WithTimeSpaceCoeff option.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"neurocuts/pkg/classifier"
)

func main() {
	rules, err := classifier.GenerateRules("ipc1", 300, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier: %d rules (ipc1)\n\n", rules.Len())

	cValues := []float64{0, 0.1, 0.5, 1}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "c\tworst-case lookups\tbytes/rule")

	for i, coeff := range cValues {
		c, err := classifier.Open(rules,
			classifier.WithBackend("neurocuts"),
			classifier.WithTimeSpaceCoeff(coeff),
			classifier.WithLogReward(), // log scaling makes time and space commensurable
			classifier.WithSimplePartition(),
			classifier.WithTrainingBudget(4000),
			classifier.WithSeed(int64(100+i)))
		if err != nil {
			log.Fatal(err)
		}
		m := c.Stats().Metrics
		fmt.Fprintf(tw, "%.1f\t%d\t%.1f\n", coeff, m.LookupCost, m.BytesPerRule)
		c.Close()
	}
	tw.Flush()
	fmt.Println("\nc -> 1 favours classification time; c -> 0 favours memory footprint (Figure 11).")
}
