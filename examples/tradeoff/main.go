// Tradeoff: sweep the time-space coefficient c (Equation 5) and show how
// NeuroCuts interpolates between time-optimised and space-optimised trees —
// a miniature version of Figure 11.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"neurocuts/internal/classbench"
	"neurocuts/internal/core"
	"neurocuts/internal/env"
)

func main() {
	family, err := classbench.FamilyByName("ipc1")
	if err != nil {
		log.Fatal(err)
	}
	rules := classbench.Generate(family, 300, 5)
	fmt.Printf("classifier: %d rules (%s)\n\n", rules.Len(), family.Name)

	cValues := []float64{0, 0.1, 0.5, 1}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "c\tworst-case lookups\tbytes/rule\ttree nodes")

	for i, c := range cValues {
		cfg := core.Scaled(1000)
		cfg.TimeSpaceCoeff = c
		cfg.Scale = env.ScaleLog // log scaling makes time and space commensurable
		cfg.Partition = env.PartitionSimple
		cfg.MaxTimesteps = 4000
		cfg.BatchTimesteps = 800
		cfg.Seed = int64(100 + i)

		trainer := core.NewTrainer(rules, cfg)
		if _, err := trainer.Train(); err != nil {
			log.Fatal(err)
		}
		best, _ := trainer.BestTree()
		m := best.ComputeMetrics()
		fmt.Fprintf(tw, "%.1f\t%d\t%.1f\t%d\n", c, m.ClassificationTime, m.BytesPerRule, m.Nodes)
	}
	tw.Flush()
	fmt.Println("\nc -> 1 favours classification time; c -> 0 favours memory footprint (Figure 11).")
}
